#include "snap/snapshot.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "chase/canonical.h"
#include "logic/budget.h"
#include "snap/format.h"
#include "text/dx_parser.h"
#include "util/fault.h"
#include "util/str.h"

namespace ocdx {
namespace snap {

namespace {

// A serialized Value is valid iff it is a well-formed tagged handle
// (no stray bits in 32..62, not the invalid sentinel) whose id is within
// the snapshot's own stored totals. Every value-carrying payload is run
// through this before any id is used as an index.
bool ValidValueRaw(uint64_t raw, uint64_t num_consts, uint64_t num_nulls) {
  Value v = Value::FromRaw(raw);
  if (!v.IsValid()) return false;
  constexpr uint64_t kReservedBits = 0x7fffffff00000000ULL;
  if ((raw & kReservedBits) != 0) return false;
  return v.IsConst() ? v.id() < num_consts : v.id() < num_nulls;
}

bool ValidWitnessRef(uint64_t offset, uint32_t len, uint64_t witness_size) {
  return len <= witness_size && offset <= witness_size - len;
}

// ---------------------------------------------------------------------------
// Section encoders
// ---------------------------------------------------------------------------

void EncodeMeta(const SnapshotBundle& b, Sink* out) {
  out->Str(b.source_path);
  out->Str(b.dx_text);
}

void EncodeUniverse(const Universe& u, Sink* out) {
  out->U64(u.num_consts());
  for (uint32_t c = 0; c < u.num_consts(); ++c) out->Str(u.ConstName(c));

  std::vector<Value> witness;
  u.AppendWitnessValues(&witness);
  out->U64(witness.size());
  for (Value v : witness) out->U64(v.raw());

  // Null registry, columnar: a fixed-width record per null followed by
  // one blob of concatenated var/label bytes. The loader gets two bounds
  // checks for the whole registry instead of five per null — the
  // registry is the second-largest payload and decoded on every warm
  // start.
  out->U64(u.num_nulls());
  std::string blob;
  for (uint32_t n = 0; n < u.num_nulls(); ++n) {
    const NullInfo& info = u.null_info(Value::MakeNull(n));
    out->I32(info.std_index);
    out->U64(info.witness.offset);
    out->U32(info.witness.len);
    out->U32(static_cast<uint32_t>(info.var.size()));
    out->U32(static_cast<uint32_t>(info.label.size()));
    blob += info.var;
    blob += info.label;
  }
  out->Str(blob);
}

void EncodeAnnotatedRelation(const AnnotatedRelation& rel, Sink* out) {
  out->U64(rel.arity());
  // Rebuild the (pool, per-row spec, flat extent) triple LoadRows takes,
  // from the public row view — first-appearance pool order, rows in id
  // order (which, by the dedup-before-intern invariant, is also the
  // arena's extent order).
  std::vector<AnnVec> pool;
  std::vector<AnnotatedRelation::RowSpec> specs;
  std::vector<Value> flat;
  specs.reserve(rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    AnnotatedTupleRef t = rel.row(i);
    AnnVec ann(t.ann.begin(), t.ann.end());
    uint32_t ann_index = 0;
    while (ann_index < pool.size() && !(AnnRef(pool[ann_index]) == AnnRef(ann))) {
      ++ann_index;
    }
    if (ann_index == pool.size()) pool.push_back(std::move(ann));
    specs.push_back({static_cast<uint32_t>(t.values.size()), ann_index});
    flat.insert(flat.end(), t.values.begin(), t.values.end());
  }
  out->U64(pool.size());
  for (const AnnVec& ann : pool) {
    for (Ann a : ann) out->U8(static_cast<uint8_t>(a));
  }
  out->U64(specs.size());
  for (const AnnotatedRelation::RowSpec& s : specs) {
    out->U32(s.len);
    out->U32(s.ann);
  }
  out->U64(flat.size());
  for (Value v : flat) out->U64(v.raw());
}

// Scenario instances as binary relation payloads, in declaration order.
// The loader parses the embedded text with instance rows ELIDED (the
// structure — names, schemas, vocabulary — still comes from the text)
// and reconstitutes the rows from here with the same bulk LoadRows path
// the chased section uses, so a fact-heavy scenario warm-starts without
// re-tokenizing a single fact.
void EncodeInstances(const DxScenario& scenario, Sink* out) {
  out->U64(scenario.instances.size());
  for (const DxInstanceDecl& inst : scenario.instances) {
    out->Str(inst.name);
    out->Str(inst.over);
    out->U8(inst.annotated ? 1 : 0);
    out->U64(inst.annotated_instance.relations().size());
    for (const auto& [name, rel] : inst.annotated_instance.relations()) {
      out->Str(name);
      EncodeAnnotatedRelation(rel, out);
    }
  }
}

void EncodeChased(const PrechasedStore& store, Sink* out) {
  out->U64(store.size());
  for (const auto& [key, csol] : store.entries()) {
    out->Str(key.first);
    out->Str(key.second);
    out->U64(csol.annotated.relations().size());
    for (const auto& [name, rel] : csol.annotated.relations()) {
      out->Str(name);
      EncodeAnnotatedRelation(rel, out);
    }
    out->U64(csol.triggers.size());
    for (const ChaseTrigger& t : csol.triggers) {
      out->I32(t.std_index);
      out->U64(t.witness.offset);
      out->U32(t.witness.len);
      out->U64(t.fresh_nulls.offset);
      out->U32(t.fresh_nulls.len);
    }
  }
}

// ---------------------------------------------------------------------------
// Section decoders
// ---------------------------------------------------------------------------

// Replays the stored universe into a FRESH Universe: the constant table
// interns in stored order (so every stored Value's id resolves to the
// same name it had at write time), then the null registry and the
// justification arena load verbatim. The embedded scenario text is
// parsed *afterwards*, into this same universe, with instance rows
// elided — its rule/query constants resolve to the pre-interned ids, and
// ParseSnapshot verifies the parse introduced nothing new.
Status DecodeUniverse(Source* src, Universe* u) {
  OCDX_ASSIGN_OR_RETURN(uint64_t num_consts, src->U64());
  for (uint64_t c = 0; c < num_consts; ++c) {
    OCDX_ASSIGN_OR_RETURN(std::string name, src->Str());
    if (u->Const(name).id() != c) {
      return src->Corrupt(StrCat("constant ", c, " '", name,
                                 "' duplicates an earlier table entry"));
    }
  }

  OCDX_ASSIGN_OR_RETURN(uint64_t witness_size, src->U64());
  if (witness_size > src->remaining() / sizeof(uint64_t)) {
    return src->Corrupt(StrCat("witness count ", witness_size,
                               " exceeds the section payload"));
  }
  // Bulk read: one bounds check for the whole array, then a straight
  // copy into the Value vector LoadWitnessValues takes (Value is a
  // trivially-copyable u64 wrapper, so the stored raw bits ARE the
  // in-memory layout) — the justification arena is the largest single
  // payload in a snapshot and a per-element read would dominate
  // warm-start time.
  static_assert(sizeof(Value) == sizeof(uint64_t) &&
                std::is_trivially_copyable_v<Value>);
  std::vector<Value> witness(static_cast<size_t>(witness_size));
  OCDX_ASSIGN_OR_RETURN(std::span<const uint8_t> witness_bytes,
                        src->Bytes(witness_size * sizeof(uint64_t)));
  std::memcpy(witness.data(), witness_bytes.data(), witness_bytes.size());

  OCDX_ASSIGN_OR_RETURN(uint64_t num_nulls, src->U64());
  // Witness values may reference any stored null (fresh-null spans live
  // in the same arena), so they validate against the stored total.
  for (uint64_t i = 0; i < witness_size; ++i) {
    if (!ValidValueRaw(witness[static_cast<size_t>(i)].raw(), num_consts,
                       num_nulls)) {
      return src->Corrupt(StrCat("witness value ", i, " is not a valid "
                                 "constant or null handle"));
    }
  }
  // Columnar registry (see EncodeUniverse): fixed records, then the
  // var/label string blob. Two bounds checks cover every null.
  constexpr uint64_t kNullRecord =
      sizeof(int32_t) + sizeof(uint64_t) + 3 * sizeof(uint32_t);
  if (num_nulls > src->remaining() / kNullRecord) {
    return src->Corrupt(StrCat("null count ", num_nulls,
                               " exceeds the section payload"));
  }
  OCDX_ASSIGN_OR_RETURN(std::span<const uint8_t> records,
                        src->Bytes(num_nulls * kNullRecord));
  OCDX_ASSIGN_OR_RETURN(uint64_t blob_len, src->U64());
  OCDX_ASSIGN_OR_RETURN(std::span<const uint8_t> blob,
                        src->Bytes(blob_len));
  const char* blob_chars = reinterpret_cast<const char*>(blob.data());
  uint64_t blob_pos = 0;
  u->ReserveNulls(static_cast<size_t>(num_nulls));
  for (uint64_t n = 0; n < num_nulls; ++n) {
    const uint8_t* rec = records.data() + n * kNullRecord;
    NullInfo info;
    uint64_t w_off;
    uint32_t w_len, var_len, label_len;
    std::memcpy(&info.std_index, rec, sizeof(int32_t));
    std::memcpy(&w_off, rec + 4, sizeof w_off);
    std::memcpy(&w_len, rec + 12, sizeof w_len);
    std::memcpy(&var_len, rec + 16, sizeof var_len);
    std::memcpy(&label_len, rec + 20, sizeof label_len);
    if (var_len > blob_len - blob_pos ||
        label_len > blob_len - blob_pos - var_len) {
      return src->Corrupt(
          StrCat("null ", n, " names run past the string blob"));
    }
    info.var.assign(blob_chars + blob_pos, var_len);
    info.label.assign(blob_chars + blob_pos + var_len, label_len);
    blob_pos += var_len + static_cast<uint64_t>(label_len);
    if (!ValidWitnessRef(w_off, w_len, witness_size)) {
      return src->Corrupt(
          StrCat("null ", n, " justification is out of arena bounds"));
    }
    info.witness = WitnessRef{w_off, w_len};
    u->MintNull(std::move(info));
  }
  if (blob_pos != blob_len) {
    return src->Corrupt(StrCat("null string blob has ", blob_len - blob_pos,
                               " unclaimed bytes"));
  }

  if (!u->LoadWitnessValues(witness)) {
    return src->Corrupt("justification arena is not empty");
  }
  return src->ExpectEnd();
}

Status DecodeAnnotatedRelation(Source* src, const RelationDecl& decl,
                               uint64_t num_consts, uint64_t num_nulls,
                               AnnotatedRelation* rel) {
  OCDX_ASSIGN_OR_RETURN(uint64_t arity, src->U64());
  if (arity != decl.arity()) {
    return src->Corrupt(StrCat("relation '", decl.name, "' stores arity ",
                               arity, " but the schema declares ",
                               decl.arity()));
  }
  OCDX_ASSIGN_OR_RETURN(uint64_t pool_size, src->U64());
  if (arity > 0 && pool_size > src->remaining() / arity) {
    return src->Corrupt(StrCat("annotation pool of ", pool_size,
                               " exceeds the section payload"));
  }
  std::vector<AnnVec> pool(static_cast<size_t>(pool_size));
  for (AnnVec& ann : pool) {
    ann.resize(static_cast<size_t>(arity));
    for (size_t p = 0; p < arity; ++p) {
      OCDX_ASSIGN_OR_RETURN(uint8_t a, src->U8());
      if (a > 1) {
        return src->Corrupt(StrCat("relation '", decl.name,
                                   "' has annotation byte ", a));
      }
      ann[p] = static_cast<Ann>(a);
    }
  }
  OCDX_ASSIGN_OR_RETURN(uint64_t num_rows, src->U64());
  if (num_rows > src->remaining() / (2 * sizeof(uint32_t))) {
    return src->Corrupt(StrCat("row count ", num_rows,
                               " exceeds the section payload"));
  }
  std::vector<AnnotatedRelation::RowSpec> specs(
      static_cast<size_t>(num_rows));
  OCDX_ASSIGN_OR_RETURN(std::span<const uint8_t> spec_bytes,
                        src->Bytes(num_rows * 2 * sizeof(uint32_t)));
  for (uint64_t i = 0; i < num_rows; ++i) {
    const uint8_t* at = spec_bytes.data() + i * 2 * sizeof(uint32_t);
    std::memcpy(&specs[static_cast<size_t>(i)].len, at, sizeof(uint32_t));
    std::memcpy(&specs[static_cast<size_t>(i)].ann, at + sizeof(uint32_t),
                sizeof(uint32_t));
  }
  OCDX_ASSIGN_OR_RETURN(uint64_t flat_size, src->U64());
  if (flat_size > src->remaining() / sizeof(uint64_t)) {
    return src->Corrupt(StrCat("value count ", flat_size,
                               " exceeds the section payload"));
  }
  std::vector<Value> flat(static_cast<size_t>(flat_size));
  OCDX_ASSIGN_OR_RETURN(std::span<const uint8_t> flat_bytes,
                        src->Bytes(flat_size * sizeof(uint64_t)));
  for (uint64_t i = 0; i < flat_size; ++i) {
    uint64_t raw;
    std::memcpy(&raw, flat_bytes.data() + i * sizeof(uint64_t), sizeof raw);
    if (!ValidValueRaw(raw, num_consts, num_nulls)) {
      return src->Corrupt(StrCat("relation '", decl.name, "' value ", i,
                                 " is not a valid constant or null handle"));
    }
    flat[static_cast<size_t>(i)] = Value::FromRaw(raw);
  }
  // LoadRows enforces the structural contract (row widths 0 or arity,
  // pool indexes in range, widths summing to the extent) and defers the
  // dedup table — a loaded relation pays no per-row hashing until the
  // first mutation.
  if (!rel->LoadRows(flat, specs, std::move(pool))) {
    return src->Corrupt(
        StrCat("relation '", decl.name, "' row structure is inconsistent"));
  }
  return Status::OK();
}

// Fills the elided-parse instances (declared, schema relations present,
// zero rows) from the binary section. All structure — instance names,
// schema bindings, relation vocabulary — comes from the parsed text; the
// section must agree with it exactly, so a corrupt payload can never
// invent an instance or a relation the scenario does not declare.
Status DecodeInstances(Source* src, DxScenario* scenario,
                       uint64_t num_consts, uint64_t num_nulls) {
  OCDX_ASSIGN_OR_RETURN(uint64_t num_instances, src->U64());
  if (num_instances != scenario->instances.size()) {
    return src->Corrupt(StrCat("stores ", num_instances,
                               " instances but the embedded scenario "
                               "declares ",
                               scenario->instances.size()));
  }
  for (DxInstanceDecl& inst : scenario->instances) {
    OCDX_ASSIGN_OR_RETURN(std::string name, src->Str());
    if (name != inst.name) {
      return src->Corrupt(StrCat("instance '", name,
                                 "' does not match declared instance '",
                                 inst.name, "'"));
    }
    OCDX_ASSIGN_OR_RETURN(std::string over, src->Str());
    if (over != inst.over) {
      return src->Corrupt(StrCat("instance '", inst.name,
                                 "' stores schema '", over,
                                 "' but is declared over '", inst.over,
                                 "'"));
    }
    OCDX_ASSIGN_OR_RETURN(uint8_t annotated, src->U8());
    if (annotated > 1) {
      return src->Corrupt(StrCat("instance '", inst.name,
                                 "' has annotated flag ", annotated));
    }
    OCDX_ASSIGN_OR_RETURN(uint64_t num_relations, src->U64());
    if (num_relations != inst.annotated_instance.relations().size()) {
      return src->Corrupt(
          StrCat("instance '", inst.name, "' stores ", num_relations,
                 " relations but its schema declares ",
                 inst.annotated_instance.relations().size()));
    }
    const DxSchemaDecl* schema = scenario->FindSchema(inst.over);
    if (schema == nullptr) {
      return src->Corrupt(StrCat("instance '", inst.name,
                                 "' is over an undeclared schema"));
    }
    // The elided parse pre-declares exactly the schema's relations, and
    // the writer iterates the same name-ordered map — so the stored
    // relation names must replay the declared ones in order.
    std::vector<std::string> rel_names;
    rel_names.reserve(inst.annotated_instance.relations().size());
    for (const auto& [rel_name, rel] : inst.annotated_instance.relations()) {
      rel_names.push_back(rel_name);
    }
    for (const std::string& rel_name : rel_names) {
      OCDX_ASSIGN_OR_RETURN(std::string stored_name, src->Str());
      if (stored_name != rel_name) {
        return src->Corrupt(StrCat("instance '", inst.name,
                                   "' stores relation '", stored_name,
                                   "' where the schema declares '", rel_name,
                                   "'"));
      }
      const RelationDecl* decl = schema->schema.Find(rel_name);
      if (decl == nullptr) {
        return src->Corrupt(StrCat("relation '", rel_name,
                                   "' is not in schema '", inst.over, "'"));
      }
      AnnotatedRelation& rel =
          inst.annotated_instance.GetOrCreate(rel_name, decl->arity());
      OCDX_RETURN_IF_ERROR(
          DecodeAnnotatedRelation(src, *decl, num_consts, num_nulls, &rel));
    }
    inst.annotated = annotated != 0;
    inst.plain = inst.annotated_instance.RelPart();
  }
  return src->ExpectEnd();
}

Status DecodeChased(Source* src, const DxScenario& scenario,
                    uint64_t num_consts, uint64_t num_nulls,
                    uint64_t witness_size, PrechasedStore* store) {
  OCDX_ASSIGN_OR_RETURN(uint64_t num_pairs, src->U64());
  for (uint64_t p = 0; p < num_pairs; ++p) {
    OCDX_ASSIGN_OR_RETURN(std::string mapping_name, src->Str());
    OCDX_ASSIGN_OR_RETURN(std::string instance_name, src->Str());
    const DxMappingDecl* m = scenario.FindMapping(mapping_name);
    const DxInstanceDecl* inst = scenario.FindInstance(instance_name);
    if (m == nullptr || inst == nullptr || !DxChasePairOk(*m, *inst)) {
      return src->Corrupt(StrCat("pair (", mapping_name, ", ", instance_name,
                                 ") is not a chaseable pair of the embedded "
                                 "scenario"));
    }
    if (store->Find(mapping_name, instance_name) != nullptr) {
      return src->Corrupt(StrCat("duplicate pair (", mapping_name, ", ",
                                 instance_name, ")"));
    }

    CanonicalSolution csol;
    OCDX_ASSIGN_OR_RETURN(uint64_t num_relations, src->U64());
    for (uint64_t r = 0; r < num_relations; ++r) {
      OCDX_ASSIGN_OR_RETURN(std::string rel_name, src->Str());
      const RelationDecl* decl = m->mapping.target().Find(rel_name);
      if (decl == nullptr) {
        return src->Corrupt(StrCat("relation '", rel_name,
                                   "' is not in the target schema of "
                                   "mapping '",
                                   mapping_name, "'"));
      }
      if (csol.annotated.Find(rel_name) != nullptr) {
        return src->Corrupt(StrCat("duplicate relation '", rel_name, "'"));
      }
      AnnotatedRelation& rel =
          csol.annotated.GetOrCreate(rel_name, decl->arity());
      OCDX_RETURN_IF_ERROR(
          DecodeAnnotatedRelation(src, *decl, num_consts, num_nulls, &rel));
    }

    OCDX_ASSIGN_OR_RETURN(uint64_t num_triggers, src->U64());
    const auto& stds = m->mapping.stds();
    // One fixed-width record per trigger: i32 std + (u64,u32) witness +
    // (u64,u32) fresh-null span. Read as one block — chase-heavy
    // snapshots store one record per firing, and this loop is on the
    // warm-start critical path.
    constexpr uint64_t kTriggerRecord =
        sizeof(int32_t) + 2 * (sizeof(uint64_t) + sizeof(uint32_t));
    if (num_triggers > src->remaining() / kTriggerRecord) {
      return src->Corrupt(StrCat("trigger count ", num_triggers,
                                 " exceeds the section payload"));
    }
    OCDX_ASSIGN_OR_RETURN(std::span<const uint8_t> trigger_bytes,
                          src->Bytes(num_triggers * kTriggerRecord));
    // Per-STD data is hoisted out of the trigger loop: BodyVars /
    // ExistentialVars recompute free-variable sets per call, and the
    // var_order is shared per STD, exactly as the chase builds it.
    std::vector<std::shared_ptr<const std::vector<std::string>>> var_orders(
        stds.size());
    std::vector<uint32_t> exist_widths(stds.size());
    for (size_t s = 0; s < stds.size(); ++s) {
      var_orders[s] = std::make_shared<const std::vector<std::string>>(
          stds[s].BodyVars());
      exist_widths[s] =
          static_cast<uint32_t>(stds[s].ExistentialVars().size());
    }
    csol.triggers.reserve(static_cast<size_t>(num_triggers));
    for (uint64_t t = 0; t < num_triggers; ++t) {
      const uint8_t* rec = trigger_bytes.data() + t * kTriggerRecord;
      ChaseTrigger trigger;
      uint64_t w_off;
      uint32_t w_len;
      uint64_t f_off;
      uint32_t f_len;
      std::memcpy(&trigger.std_index, rec, sizeof(int32_t));
      std::memcpy(&w_off, rec + 4, sizeof w_off);
      std::memcpy(&w_len, rec + 12, sizeof w_len);
      std::memcpy(&f_off, rec + 16, sizeof f_off);
      std::memcpy(&f_len, rec + 24, sizeof f_len);
      if (trigger.std_index < 0 ||
          static_cast<size_t>(trigger.std_index) >= stds.size()) {
        return src->Corrupt(StrCat("trigger ", t, " references std ",
                                   trigger.std_index, " of mapping '",
                                   mapping_name, "'"));
      }
      if (!ValidWitnessRef(w_off, w_len, witness_size) ||
          !ValidWitnessRef(f_off, f_len, witness_size)) {
        return src->Corrupt(
            StrCat("trigger ", t, " references the justification arena out "
                   "of bounds"));
      }
      if (w_len != var_orders[trigger.std_index]->size() ||
          f_len != exist_widths[trigger.std_index]) {
        return src->Corrupt(StrCat("trigger ", t,
                                   " width disagrees with std ",
                                   trigger.std_index, " of mapping '",
                                   mapping_name, "'"));
      }
      trigger.var_order = var_orders[trigger.std_index];
      trigger.witness = WitnessRef{w_off, w_len};
      trigger.fresh_nulls = WitnessRef{f_off, f_len};
      csol.triggers.push_back(std::move(trigger));
    }

    store->Put(std::move(mapping_name), std::move(instance_name),
               std::move(csol));
  }
  return src->ExpectEnd();
}

}  // namespace

Result<SnapshotBundle> BuildSnapshotBundle(std::string source_path,
                                           std::string dx_text,
                                           const EngineContext& engine) {
  SnapshotBundle b;
  b.source_path = std::move(source_path);
  b.dx_text = std::move(dx_text);
  b.universe = std::make_unique<Universe>();
  OCDX_ASSIGN_OR_RETURN(b.scenario,
                        ParseDxScenario(b.dx_text, b.universe.get()));

  // The same budget fold RunDxCommand applies: scenario caps tighten the
  // caller's, and the deadline (if any) covers the whole build. With the
  // deterministic count caps this makes build-time governance equal
  // run-time governance: a pair the cold driver would trip on trips here
  // too, is left out of the store, and the warm driver re-chases it into
  // the identical diagnostic.
  EngineContext ctx = engine;
  ctx.EnsureCache();
  for (const auto& [key, value] : b.scenario.budget_settings) {
    Budget tight;
    SetBudgetField(&tight, key, value);
    ctx.budget.Tighten(tight);
  }
  ctx.budget.ArmDeadline();

  for (const DxMappingDecl& m : b.scenario.mappings) {
    for (const DxInstanceDecl& inst : b.scenario.instances) {
      if (!DxChasePairOk(m, inst)) continue;
      Result<CanonicalSolution> chased =
          Chase(m.mapping, inst.plain, b.universe.get(), ctx);
      if (!chased.ok()) {
        if (IsBudgetStatusCode(chased.status().code())) continue;
        return chased.status();
      }
      b.prechased.Put(m.name, inst.name, std::move(chased).value());
    }
  }
  // Seal: from here the bundle serves concurrent readers (ocdxd
  // preload), and every run mints through a private overlay instead of
  // cloning (RunSnapshotCommand).
  b.universe->Freeze();
  return b;
}

Result<std::string> SerializeSnapshot(const SnapshotBundle& bundle) {
  std::string out;
  AppendHeader(&out, 4);

  OCDX_RETURN_IF_ERROR(fault::Probe("snap-write"));
  Sink meta;
  EncodeMeta(bundle, &meta);
  AppendSection(&out, SectionId::kMeta, meta);

  OCDX_RETURN_IF_ERROR(fault::Probe("snap-write"));
  Sink universe;
  EncodeUniverse(*bundle.universe, &universe);
  AppendSection(&out, SectionId::kUniverse, universe);

  OCDX_RETURN_IF_ERROR(fault::Probe("snap-write"));
  Sink instances;
  EncodeInstances(bundle.scenario, &instances);
  AppendSection(&out, SectionId::kInstances, instances);

  OCDX_RETURN_IF_ERROR(fault::Probe("snap-write"));
  Sink chased;
  EncodeChased(bundle.prechased, &chased);
  AppendSection(&out, SectionId::kChased, chased);

  return out;
}

Result<SnapshotBundle> ParseSnapshot(std::span<const uint8_t> bytes) {
  OCDX_ASSIGN_OR_RETURN(std::vector<SectionView> sections,
                        ParseContainer(bytes));
  // v1 writes exactly meta, universe, instances, chased, in that order;
  // anything else is a corrupt or foreign file.
  const SectionId expect[] = {SectionId::kMeta, SectionId::kUniverse,
                              SectionId::kInstances, SectionId::kChased};
  if (sections.size() != 4) {
    return Status::DataLoss(StrCat("snapshot: expected 4 sections, found ",
                                   sections.size()));
  }
  for (size_t s = 0; s < 4; ++s) {
    if (sections[s].id != static_cast<uint32_t>(expect[s])) {
      return Status::DataLoss(
          StrCat("snapshot: expected section '",
                 SectionIdName(static_cast<uint32_t>(expect[s])),
                 "' at position ", s, ", found '",
                 SectionIdName(sections[s].id), "'"));
    }
  }

  SnapshotBundle b;

  OCDX_RETURN_IF_ERROR(fault::Probe("snap-read"));
  Source meta(sections[0].payload, "meta");
  OCDX_ASSIGN_OR_RETURN(b.source_path, meta.Str());
  OCDX_ASSIGN_OR_RETURN(b.dx_text, meta.Str());
  OCDX_RETURN_IF_ERROR(meta.ExpectEnd());

  // Universe first: the stored constant table interns into the fresh
  // universe in stored order, so every Value in the remaining sections
  // resolves to the name it had at write time.
  OCDX_RETURN_IF_ERROR(fault::Probe("snap-read"));
  b.universe = std::make_unique<Universe>();
  Source universe(sections[1].payload, "universe");
  OCDX_RETURN_IF_ERROR(DecodeUniverse(&universe, b.universe.get()));
  const uint64_t num_consts = b.universe->num_consts();
  const uint64_t num_nulls = b.universe->num_nulls();

  // The embedded text is still the authority on scenario *structure*
  // (schemas, mappings, queries, instance declarations), but its
  // instance rows are elided at the lexer — the rows come back from the
  // binary instances section instead, through the same bulk load path
  // the chased section uses. Rule and query constants resolve against
  // the pre-interned table; a parse that mints anything new names
  // vocabulary the writer never stored, i.e. the sections disagree.
  Result<DxScenario> scenario =
      ParseDxScenario(b.dx_text, b.universe.get(),
                      DxParseOptions{.elide_instance_rows = true});
  if (!scenario.ok()) {
    return Status::DataLoss(
        StrCat("snapshot: embedded scenario does not parse: ",
               scenario.status().ToString()));
  }
  b.scenario = std::move(scenario).value();
  if (b.universe->num_consts() != num_consts ||
      b.universe->num_nulls() != num_nulls) {
    return Status::DataLoss(
        "snapshot: embedded scenario uses vocabulary missing from the "
        "stored constant table");
  }

  OCDX_RETURN_IF_ERROR(fault::Probe("snap-read"));
  Source instances(sections[2].payload, "instances");
  OCDX_RETURN_IF_ERROR(
      DecodeInstances(&instances, &b.scenario, num_consts, num_nulls));

  OCDX_RETURN_IF_ERROR(fault::Probe("snap-read"));
  Source chased(sections[3].payload, "chased");
  OCDX_RETURN_IF_ERROR(DecodeChased(&chased, b.scenario,
                                    b.universe->num_consts(),
                                    b.universe->num_nulls(),
                                    b.universe->witness_size(),
                                    &b.prechased));
  // Same seal as BuildSnapshotBundle: a loaded bundle is a frozen base.
  b.universe->Freeze();
  return b;
}

Status WriteSnapshotFile(const SnapshotBundle& bundle,
                         const std::string& path) {
  OCDX_ASSIGN_OR_RETURN(std::string bytes, SerializeSnapshot(bundle));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !out.write(bytes.data(), static_cast<std::streamsize>(
                                           bytes.size()))) {
    return Status::NotFound(StrCat("cannot write '", path, "'"));
  }
  return Status::OK();
}

Result<SnapshotBundle> LoadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrCat("cannot read '", path, "'"));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  return ParseSnapshot(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
}

std::string DescribeSnapshot(const SnapshotBundle& bundle) {
  std::string out = StrCat("snapshot of '", bundle.source_path, "'\n");
  if (!bundle.scenario.name.empty()) {
    out += StrCat("scenario '", bundle.scenario.name, "'\n");
  }
  out += StrCat("text: ", bundle.dx_text.size(), " bytes\n");
  out += StrCat("universe: ", bundle.universe->num_consts(), " constants, ",
                bundle.universe->num_nulls(), " nulls, ",
                bundle.universe->witness_size(), " witness values\n");
  out += StrCat("prechased pairs: ", bundle.prechased.size(), "\n");
  for (const auto& [key, csol] : bundle.prechased.entries()) {
    size_t proper = 0;
    size_t markers = 0;
    for (const auto& [name, rel] : csol.annotated.relations()) {
      proper += rel.NumProperTuples();
      markers += rel.size() - rel.NumProperTuples();
    }
    out += StrCat("  ", key.first, " / ", key.second, ": ",
                  csol.annotated.relations().size(), " relations, ", proper,
                  " tuples, ", markers, " markers, ", csol.triggers.size(),
                  " triggers\n");
  }
  return out;
}

Result<std::string> RunSnapshotCommand(const SnapshotBundle& bundle,
                                       const std::string& command,
                                       const DxDriverOptions& options,
                                       Status* governed) {
  // One copy-on-write overlay per run: the warm chase fallback and the
  // member-enumeration loops mint scratch values into the universe they
  // are given, and the bundle must stay reusable (and byte-stable)
  // across requests. The frozen bundle universe is never copied — the
  // overlay's mints start at exactly the ids a clone's would have, so
  // output is unchanged.
  std::unique_ptr<Universe> u = bundle.universe->NewOverlay();
  DxDriverOptions run = options;
  run.prechased = &bundle.prechased;
  if (run.engine.stats != nullptr) {
    ++run.engine.stats->frozen_base_reuses;
    ++run.engine.stats->overlay_mints;
    run.engine.stats->clone_bytes_avoided +=
        bundle.universe->ApproxCloneBytes();
  }
  return RunDxCommand(bundle.scenario, command, u.get(), run, governed);
}

}  // namespace snap
}  // namespace ocdx
