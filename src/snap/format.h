// Binary snapshot container format (version 1).
//
// A snapshot file is a fixed header followed by a sequence of sections:
//
//   header   := magic[8] version:u32 endian:u32 section_count:u32
//               reserved:u32
//   section  := id:u32 reserved:u32 payload_len:u64 checksum:u64
//               payload[payload_len]
//
// All integers are stored in the writing machine's native byte order; the
// `endian` tag (kEndianTag written natively) lets a reader on a foreign-
// endian machine reject the file with a stable error instead of
// misreading every field. `checksum` is FNV-1a-64 over the payload bytes,
// verified before a section is parsed, so a flipped bit anywhere in a
// payload surfaces as one positioned kDataLoss error — never as a crash
// in the section decoders (which additionally bound-check every read).
//
// The section ids and their payload encodings live in snap/snapshot.cc;
// this header is only the framing: checksums, the byte-builder (Sink) and
// the bounded byte-reader (Source), and container assembly/parse.

#ifndef OCDX_SNAP_FORMAT_H_
#define OCDX_SNAP_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ocdx {
namespace snap {

/// First 8 bytes of every snapshot file.
inline constexpr char kMagic[8] = {'O', 'C', 'D', 'X', 'S', 'N', 'A', 'P'};

/// Format version this build writes and reads.
inline constexpr uint32_t kFormatVersion = 1;

/// Byte-order tag, written natively: a foreign-endian reader sees the
/// byte-swapped value and rejects the file.
inline constexpr uint32_t kEndianTag = 0x01020304;

/// Section identifiers. The writer emits meta, universe, instances,
/// chased, in that order (kInstances was assigned after kChased; the id
/// is identity, the file order is the contract).
enum class SectionId : uint32_t {
  kMeta = 1,       ///< Source path + embedded `.dx` scenario text.
  kUniverse = 2,   ///< Constant table, justification arena, null registry.
  kChased = 3,     ///< Pre-chased canonical solutions + triggers.
  kInstances = 4,  ///< Scenario instances as binary relation payloads.
};

/// Human name for error messages ("meta", "universe", "chased",
/// "unknown").
const char* SectionIdName(uint32_t id);

/// Section checksum: an FNV-style 64-bit hash processed in 8-byte lanes
/// with a down-mixing shift-xor per lane (byte-at-a-time FNV-1a costs a
/// multiply per byte, which is measurable warm-start time on MB-scale
/// snapshots). Any single-bit corruption changes the value; the lane
/// mixing propagates high-bit differences into low bits so multi-bit
/// damage is caught with ~2^-64 escape probability. Part of format v1 —
/// changing it is a format version bump.
uint64_t Checksum64(std::span<const uint8_t> bytes);

/// Appends native-endian scalars, raw bytes and length-prefixed strings
/// to a growing buffer. The inverse of Source.
class Sink {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void Bytes(std::span<const uint8_t> b) { Raw(b.data(), b.size()); }
  /// u64 length + bytes.
  void Str(std::string_view s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounded reader over one section payload. Every read is range-checked;
/// an out-of-bounds read returns a positioned kDataLoss error naming the
/// section and the byte offset, so truncation and length-field corruption
/// can never run past the buffer.
class Source {
 public:
  Source(std::span<const uint8_t> bytes, std::string section)
      : bytes_(bytes), section_(std::move(section)) {}

  // The scalar reads are inline — snapshot loading is a long run of
  // them, and an out-of-line call (plus a cold-path error object) per
  // field would dominate warm-start time. Only the failure path calls
  // out of line.
  Result<uint8_t> U8() {
    if (remaining() < 1) return OutOfBounds(1);
    return bytes_[pos_++];
  }
  Result<uint32_t> U32() { return Scalar<uint32_t>(); }
  Result<uint64_t> U64() { return Scalar<uint64_t>(); }
  Result<int32_t> I32() { return Scalar<int32_t>(); }
  /// u64 length + bytes (length bounded by the remaining payload).
  Result<std::string> Str() {
    OCDX_ASSIGN_OR_RETURN(uint64_t len, U64());
    OCDX_ASSIGN_OR_RETURN(std::span<const uint8_t> b, Bytes(len));
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  Result<std::span<const uint8_t>> Bytes(uint64_t n) {
    if (n > remaining()) return OutOfBounds(n);
    std::span<const uint8_t> out =
        bytes_.subspan(pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return out;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  /// OK iff fully consumed; otherwise a kDataLoss naming the trailing
  /// byte count (a decoder that "succeeds" with bytes left over read a
  /// corrupt structure).
  Status ExpectEnd() const;

  /// The kDataLoss error every bounds failure uses; exposed so section
  /// decoders can report structure-level corruption (bad counts, bad
  /// value bits) at the same position granularity.
  Status Corrupt(std::string_view what) const;

 private:
  template <typename T>
  Result<T> Scalar() {
    if (remaining() < sizeof(T)) return OutOfBounds(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }
  /// Cold path: the positioned kDataLoss a short read produces.
  Status OutOfBounds(uint64_t need) const;

  std::span<const uint8_t> bytes_;
  std::string section_;
  size_t pos_ = 0;
};

/// One parsed section: id + checksum-verified payload view into the file
/// buffer.
struct SectionView {
  uint32_t id = 0;
  std::span<const uint8_t> payload;
};

/// Appends the file header for `section_count` sections.
void AppendHeader(std::string* out, uint32_t section_count);

/// Appends one section (header + checksum + payload bytes).
void AppendSection(std::string* out, SectionId id, const Sink& payload);

/// Validates the container framing — magic, version, endianness, section
/// bounds and checksums — and returns the section views. Every failure is
/// a kDataLoss with stable text (pinned by tests/snap_version_test.cc).
Result<std::vector<SectionView>> ParseContainer(
    std::span<const uint8_t> file);

}  // namespace snap
}  // namespace ocdx

#endif  // OCDX_SNAP_FORMAT_H_
