// Job and result records for the batch executor (exec/batch_runner.h).
//
// A job is one independently runnable slice of work over one `.dx` file:
// a DxJobSpec (command + selection + engine context) from
// text/dx_driver.h's PlanDxJobs, plus enough identity to reassemble the
// deterministic, submission-ordered report. Jobs own nothing shared:
// each execution parses its own copy of the scenario into its own
// Universe (the one-Universe-per-job rule), so jobs can run on any
// worker in any order.

#ifndef OCDX_EXEC_JOB_H_
#define OCDX_EXEC_JOB_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/value.h"
#include "logic/engine_context.h"
#include "obs/trace.h"
#include "text/dx_driver.h"
#include "util/status.h"

namespace ocdx {

/// One schedulable unit. `source` is the file's text, shared (read-only)
/// among the slices of one file.
struct BatchJob {
  size_t index = 0;       ///< Submission order across the whole batch.
  size_t file_index = 0;  ///< Index into the batch's input file list.
  std::string file;       ///< Path (for error messages).
  std::shared_ptr<const std::string> source;  ///< File contents.
  DxJobSpec spec;         ///< Command slice to run.
  /// Optional frozen base from the planning parse, shared (read-only) by
  /// the slices of one file: when set, the job parses into a
  /// copy-on-write overlay of this universe instead of a cold one —
  /// constants resolve against the base with no re-interning, and no
  /// allocation is shared mutably across workers. Attached only when the
  /// planning parse minted no nulls (a null-free base guarantees the
  /// overlay parse assigns exactly the ids a cold parse would, keeping
  /// output byte-identical); scenarios that declare nulls keep the
  /// fresh-Universe path.
  std::shared_ptr<const Universe> frozen_base;
  /// When set, the job allocates its own obs::TraceSink (one sink per
  /// job, like its stats) and returns it on the result for the batch
  /// trace merge.
  bool collect_trace = false;
};

/// The outcome of one job, written into the report slot matching the
/// job's submission index.
struct BatchJobResult {
  Status status;
  /// First budget/deadline/cancellation trip inside the job (OK when
  /// none). A governed job still has status OK and full output — the trip
  /// renders inline as positioned `error ...` lines (see RunDxCommand) —
  /// so governance never breaks batch byte-identity or stops the batch.
  Status governed;
  std::string output;  ///< prefix + canonical command text (when ok).
  double millis = 0;   ///< Wall time of this job alone.
  EngineStats stats;   ///< This job's evaluation counters and timers.
  /// The job's span buffer (only when BatchJob::collect_trace was set).
  /// Owned here so the merge can absorb sinks in submission order.
  std::unique_ptr<obs::TraceSink> trace;
};

}  // namespace ocdx

#endif  // OCDX_EXEC_JOB_H_
