// Parallel batch execution of `.dx` scenario workloads.
//
// The runner fans a set of scenario files — and, within each scenario,
// the independent command slices enumerated by PlanDxJobs
// (text/dx_driver.h) — across a fixed-size thread pool (exec/pool.h),
// then reassembles per-file canonical output in submission order.
//
// Determinism contract (pinned by tests/batch_exec_test.cc and the CI
// corpus diff): RenderBatchOutput is *byte-identical* for every worker
// count, including workers = 1, under every engine mode. This falls out
// of three rules rather than any synchronization:
//
//   1. every job parses its own copy of the scenario into its own
//      Universe (one Universe per job — debug-asserted by Universe);
//   2. job outputs are canonical text (sorted rendering, justification-
//      keyed null names), insensitive to interning order;
//   3. results land in submission-indexed slots; concatenation order is
//      the plan order, never completion order.
//
// Timing and throughput live only in RenderBatchSummary, which is
// intentionally not byte-stable.

#ifndef OCDX_EXEC_BATCH_RUNNER_H_
#define OCDX_EXEC_BATCH_RUNNER_H_

#include <string>
#include <vector>

#include "exec/job.h"
#include "logic/engine_context.h"
#include "text/dx_driver.h"
#include "util/status.h"

namespace ocdx {

struct BatchOptions {
  /// Worker threads; 1 = the sequential runner (same code path).
  size_t workers = 1;
  /// Driver command to run on every file ("all", "chase", ...).
  std::string command = "all";
  /// Engine template for every job (mode and budgets are copied per job;
  /// the stats pointer is ignored — each job gets its own sink).
  EngineContext engine;
  /// Fan out the slices within a scenario (per-mapping chase/certain
  /// jobs). Off = one job per file.
  bool split_scenarios = true;
  /// Give every job its own obs::TraceSink and return the sinks on the
  /// report (BatchReport::traces, submission order) for a merged Chrome
  /// trace. Stdout stays byte-identical either way.
  bool collect_traces = false;
  /// Extra driver selection applied to every file (mapping/sigma/...).
  DxDriverOptions driver;
};

/// Per-file slice of the report, in input order.
struct BatchFileReport {
  std::string file;
  Status status;       ///< OK iff planning and every job succeeded.
  /// First budget/deadline/cancellation trip among the file's jobs (OK
  /// when none). Orthogonal to `status`: a governed file still produced
  /// complete, deterministic output with inline `error ...` lines.
  Status governed;
  std::string output;  ///< Concatenated job outputs; failed jobs render a
                       ///< deterministic "ocdx: error:" line in place.
  size_t jobs = 0;
  double millis = 0;   ///< Sum of the file's job times (not wall time).
};

/// One job's trace, labeled for the merged Chrome render (the label
/// becomes the thread name; the job's submission index fixes its tid
/// block, so traces are stably laid out for every worker count).
struct BatchJobTrace {
  std::string label;  ///< "job-<index> <file>".
  std::unique_ptr<obs::TraceSink> sink;
};

struct BatchReport {
  std::vector<BatchFileReport> files;  ///< Input order.
  size_t total_jobs = 0;
  size_t governed_jobs = 0;  ///< Jobs that tripped a budget/deadline/cancel.
  double wall_millis = 0;  ///< End-to-end batch wall time.
  EngineStats stats;       ///< Aggregated over all jobs.
  /// Per-job sinks in submission order (only when
  /// BatchOptions::collect_traces was set).
  std::vector<BatchJobTrace> traces;

  bool ok() const {
    for (const BatchFileReport& f : files) {
      if (!f.status.ok()) return false;
    }
    return true;
  }
};

/// Reads, plans, and executes `files` under `options`. Only hard setup
/// errors (no input files) fail the call itself; per-file read/parse/run
/// failures are recorded in the report.
Result<BatchReport> RunDxBatch(const std::vector<std::string>& files,
                               const BatchOptions& options);

/// The canonical, worker-count-independent stdout block:
///   ==> FILE <==
///   <canonical command output>
/// per file, in input order.
std::string RenderBatchOutput(const BatchReport& report);

/// Human-readable timing/throughput summary (stderr material; not
/// byte-stable across runs).
std::string RenderBatchSummary(const BatchReport& report,
                               const BatchOptions& options);

/// Reads a file into a string (NotFound on failure) — the one
/// read-the-scenario routine shared by the batch runner, the `ocdx` CLI
/// and the `ocdxd` server, so "cannot read '<path>'" stays one message.
Result<std::string> ReadDxFile(const std::string& path);

/// Parses `path` and runs one driver command against it: the shared
/// implementation of a single batch job and of one `ocdxd` request.
/// `governed` (optional) receives the first budget/deadline/cancellation
/// trip, exactly as in RunDxCommand.
Result<std::string> RunDxFile(const std::string& path,
                              const std::string& source,
                              const std::string& command,
                              const DxDriverOptions& options,
                              Status* governed = nullptr);

}  // namespace ocdx

#endif  // OCDX_EXEC_BATCH_RUNNER_H_
