// Fixed-size thread-pool work queue: the execution substrate of the
// batch runner (exec/batch_runner.h).
//
// Deliberately minimal — a mutex-guarded FIFO drained by N worker
// threads. Tasks are opaque closures; all structure (job identity,
// result slots, ordering) lives with the caller, which is what keeps the
// pool reusable for any future fan-out (server request handling,
// sharded chases, ...).
//
// Shutdown contract: the destructor *drains* the queue — every task
// submitted before destruction runs to completion, then workers join.
// The typical usage is therefore scope-shaped:
//
//   {
//     ThreadPool pool(n);
//     for (auto& job : jobs) pool.Submit([&job] { Run(job); });
//   }  // <- all jobs finished here
//
// Tasks must not Submit() to their own pool once the destructor has
// begun: a worker that is already past the "done and drained" check will
// never come back for the late task, so it would be dropped silently.
// Submit() debug-asserts this instead (NDEBUG builds keep the old
// behavior). The contract is load-bearing for the intra-job fan-out
// (certain/member_enum.cc RunSharded): the scoped per-fan-out pool joins
// at scope exit to publish the shard results, which is only a barrier if
// nothing enqueues after the drain starts — shard visitors must never
// hold a reference to their own pool.

#ifndef OCDX_EXEC_POOL_H_
#define OCDX_EXEC_POOL_H_

#include <cassert>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ocdx {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least one).
  explicit ThreadPool(size_t workers) {
    if (workers == 0) workers = 1;
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { Work(); });
    }
  }

  /// Drains the queue, then joins every worker.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; some worker will run it exactly once. Must not be
  /// called once destruction has begun (see the shutdown contract above);
  /// debug builds assert, release builds may drop the task silently.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      assert(!done_ &&
             "ThreadPool::Submit after shutdown: the destructor's drain "
             "barrier has begun and nothing guarantees this task runs");
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  size_t num_workers() const { return threads_.size(); }

 private:
  void Work() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
        if (queue_.empty()) return;  // done_ && drained.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool done_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ocdx

#endif  // OCDX_EXEC_POOL_H_
