// Fixed-size thread-pool work queue: the execution substrate of the
// batch runner (exec/batch_runner.h).
//
// Deliberately minimal — a mutex-guarded FIFO drained by N worker
// threads. Tasks are opaque closures; all structure (job identity,
// result slots, ordering) lives with the caller, which is what keeps the
// pool reusable for any future fan-out (server request handling,
// sharded chases, ...).
//
// Shutdown contract: the destructor *drains* the queue — every task
// submitted before destruction runs to completion, then workers join.
// The typical usage is therefore scope-shaped:
//
//   {
//     ThreadPool pool(n);
//     for (auto& job : jobs) pool.Submit([&job] { Run(job); });
//   }  // <- all jobs finished here
//
// Tasks must not Submit() to their own pool after the destructor has
// begun (there is no one left to be guaranteed to run them).

#ifndef OCDX_EXEC_POOL_H_
#define OCDX_EXEC_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ocdx {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least one).
  explicit ThreadPool(size_t workers) {
    if (workers == 0) workers = 1;
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { Work(); });
    }
  }

  /// Drains the queue, then joins every worker.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; some worker will run it exactly once.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  size_t num_workers() const { return threads_.size(); }

 private:
  void Work() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
        if (queue_.empty()) return;  // done_ && drained.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool done_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ocdx

#endif  // OCDX_EXEC_POOL_H_
