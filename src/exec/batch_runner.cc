#include "exec/batch_runner.h"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "exec/pool.h"
#include "text/dx_parser.h"
#include "util/stopwatch.h"
#include "util/str.h"

namespace ocdx {

namespace {

/// Runs one planned slice: fresh Universe, fresh parse, one command.
/// This is the *entire* per-job state — nothing here outlives the call
/// or is visible to another job.
BatchJobResult RunJob(const BatchJob& job) {
  BatchJobResult result;
  Stopwatch timer;
  DxDriverOptions options = job.spec.options;
  // Each job gets its *own* plan cache (PlanCache is unsynchronized,
  // like everything else a job owns); the spec's context never carries
  // one across jobs.
  options.engine = options.engine.WithFreshCache();
  options.engine.stats = &result.stats;
  // Same rule for the trace sink: allocated here, owned by this job's
  // result, never seen by another worker. A sink inherited from the
  // spec's context would be shared across workers, so it is always
  // dropped.
  options.engine.trace = nullptr;
  if (job.collect_trace) {
    result.trace = std::make_unique<obs::TraceSink>();
    options.engine.trace = result.trace.get();
  }

  {
    obs::ScopedSpan job_span(&result.stats, result.trace.get(),
                             obs::kPhaseJob);
    // Frozen-base reuse: when the planning pass attached a frozen
    // scoping universe (null-free scenarios only — see exec/job.h), the
    // job parses into a copy-on-write overlay of it, so the file's
    // constant table is interned once per *file*, not once per job, and
    // the overlay assigns exactly the ids a cold parse would. Otherwise
    // the job owns a cold universe, as before.
    std::unique_ptr<Universe> overlay;
    Universe cold;
    Universe* universe = &cold;
    if (job.frozen_base != nullptr) {
      overlay = job.frozen_base->NewOverlay();
      universe = overlay.get();
      ++result.stats.frozen_base_reuses;
      ++result.stats.overlay_mints;
    }
    std::optional<Result<DxScenario>> scenario;
    {
      obs::ScopedSpan parse_span(&result.stats, result.trace.get(),
                                 obs::kPhaseParse);
      scenario.emplace(ParseDxScenario(*job.source, universe));
    }
    if (!scenario->ok()) {
      result.status = scenario->status();
    } else {
      Result<std::string> text =
          RunDxCommand(scenario->value(), job.spec.command, universe,
                       options, &result.governed);
      if (!text.ok()) {
        result.status = text.status();
      } else {
        result.output = StrCat(job.spec.prefix, text.value());
      }
    }
  }
  // Cancellation has no in-engine trip counter (the flag is observed at
  // many sites); count it per job, where it is well-defined.
  if (result.governed.code() == StatusCode::kCancelled) {
    ++result.stats.cancelled_jobs;
  }
  result.millis = timer.ElapsedMillis();
  return result;
}

}  // namespace

Result<std::string> ReadDxFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrCat("cannot read '", path, "'"));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Result<std::string> RunDxFile(const std::string& path,
                              const std::string& source,
                              const std::string& command,
                              const DxDriverOptions& options,
                              Status* governed) {
  // The job span brackets parse + command, exactly as in RunJob — so an
  // ocdxd request and a batch job time identically.
  obs::ScopedSpan job_span(options.engine.stats, options.engine.trace,
                           obs::kPhaseJob);
  Universe universe;
  std::optional<Result<DxScenario>> scenario;
  {
    obs::ScopedSpan parse_span(options.engine.stats, options.engine.trace,
                               obs::kPhaseParse);
    scenario.emplace(ParseDxScenario(source, &universe));
  }
  if (!scenario->ok()) {
    return Status(scenario->status().code(),
                  StrCat(path, ": ", scenario->status().message()));
  }
  return RunDxCommand(scenario->value(), command, &universe, options,
                      governed);
}

Result<BatchReport> RunDxBatch(const std::vector<std::string>& files,
                               const BatchOptions& options) {
  if (files.empty()) {
    return Status::InvalidArgument("batch needs at least one input file");
  }

  Stopwatch wall;
  BatchReport report;
  report.files.resize(files.size());

  // Planning pass (sequential, on the calling thread): read each file and
  // slice its command into independent jobs. The planning parse uses a
  // throwaway Universe; jobs re-parse into their own.
  std::vector<BatchJob> jobs;
  std::vector<std::pair<size_t, size_t>> file_job_ranges(files.size(),
                                                         {0, 0});
  for (size_t f = 0; f < files.size(); ++f) {
    report.files[f].file = files[f];
    file_job_ranges[f].first = jobs.size();

    Result<std::string> source = ReadDxFile(files[f]);
    if (!source.ok()) {
      report.files[f].status = source.status();
      file_job_ranges[f].second = jobs.size();
      continue;
    }
    auto shared_source =
        std::make_shared<const std::string>(std::move(source).value());

    std::vector<DxJobSpec> specs;
    DxDriverOptions base = options.driver;
    base.engine = options.engine;
    base.engine.stats = nullptr;
    base.engine.trace = nullptr;
    std::shared_ptr<const Universe> frozen_base;
    if (options.split_scenarios) {
      auto scoping = std::make_shared<Universe>();
      Result<DxScenario> scenario =
          ParseDxScenario(*shared_source, scoping.get());
      if (!scenario.ok()) {
        report.files[f].status = scenario.status();
        file_job_ranges[f].second = jobs.size();
        continue;
      }
      Result<std::vector<DxJobSpec>> plan =
          PlanDxJobs(scenario.value(), options.command, base);
      if (!plan.ok()) {
        report.files[f].status = plan.status();
        file_job_ranges[f].second = jobs.size();
        continue;
      }
      specs = std::move(plan).value();
      // Null-free planning parse → the overlay re-parse assigns exactly
      // the ids a cold parse would (see BatchJob::frozen_base), so the
      // jobs can share this universe as a frozen base instead of each
      // re-interning the file's constant table from scratch.
      if (scoping->num_nulls() == 0) {
        scoping->Freeze();
        frozen_base = std::move(scoping);
      }
    } else {
      DxJobSpec spec;
      spec.command = options.command;
      spec.options = base;
      specs.push_back(std::move(spec));
    }

    for (DxJobSpec& spec : specs) {
      BatchJob job;
      job.index = jobs.size();
      job.file_index = f;
      job.file = files[f];
      job.source = shared_source;
      job.spec = std::move(spec);
      job.frozen_base = frozen_base;
      job.collect_trace = options.collect_traces;
      jobs.push_back(std::move(job));
    }
    file_job_ranges[f].second = jobs.size();
  }
  report.total_jobs = jobs.size();

  // Execution. Results land in submission-indexed slots, so assembly
  // below is independent of completion order; workers share nothing but
  // the (read-only) job list and their disjoint result slots.
  std::vector<BatchJobResult> results(jobs.size());
  if (options.workers <= 1) {
    for (size_t i = 0; i < jobs.size(); ++i) results[i] = RunJob(jobs[i]);
  } else {
    ThreadPool pool(options.workers);
    for (size_t i = 0; i < jobs.size(); ++i) {
      const BatchJob* job = &jobs[i];
      BatchJobResult* slot = &results[i];
      pool.Submit([job, slot] { *slot = RunJob(*job); });
    }
    // ~ThreadPool drains the queue and joins.
  }

  // Deterministic assembly in plan order.
  for (size_t f = 0; f < files.size(); ++f) {
    BatchFileReport& fr = report.files[f];
    for (size_t i = file_job_ranges[f].first; i < file_job_ranges[f].second;
         ++i) {
      ++fr.jobs;
      fr.millis += results[i].millis;
      report.stats += results[i].stats;
      if (!results[i].governed.ok()) {
        ++report.governed_jobs;
        if (fr.governed.ok()) fr.governed = results[i].governed;
      }
      if (results[i].status.ok()) {
        fr.output += results[i].output;
      } else {
        fr.output += StrCat(jobs[i].spec.prefix, "ocdx: error: ",
                            results[i].status.ToString(), "\n");
        if (fr.status.ok()) fr.status = results[i].status;
      }
    }
  }
  // Trace handoff in submission order: job i always lands at traces[i],
  // so the merged render's tid layout is identical for every -j.
  if (options.collect_traces) {
    report.traces.reserve(results.size());
    for (size_t i = 0; i < results.size(); ++i) {
      report.traces.push_back(BatchJobTrace{
          StrCat("job-", i, " ", jobs[i].file), std::move(results[i].trace)});
    }
  }
  report.wall_millis = wall.ElapsedMillis();
  return report;
}

std::string RenderBatchOutput(const BatchReport& report) {
  std::string out;
  for (const BatchFileReport& f : report.files) {
    out += StrCat("==> ", f.file, " <==\n");
    if (f.jobs == 0 && !f.status.ok()) {
      // Planning-level failure (unreadable file, parse error, no
      // applicable inputs): still rendered deterministically.
      out += StrCat("ocdx: error: ", f.status.ToString(), "\n");
    } else {
      out += f.output;
    }
  }
  return out;
}

std::string RenderBatchSummary(const BatchReport& report,
                               const BatchOptions& options) {
  size_t failed = 0;
  double job_millis = 0;
  for (const BatchFileReport& f : report.files) {
    if (!f.status.ok()) ++failed;
    job_millis += f.millis;
  }
  std::string out = StrCat(
      "batch: ", report.files.size(), " file(s), ", report.total_jobs,
      " job(s), ", options.workers, " worker(s), command=", options.command,
      "\n");
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "batch: wall %.2f ms, cpu (sum of jobs) %.2f ms, "
                "speedup %.2fx\n",
                report.wall_millis, job_millis,
                report.wall_millis > 0 ? job_millis / report.wall_millis
                                       : 0.0);
  out += buf;
  out += StrCat("batch: engine stats: cq_plans=", report.stats.cq_plans,
                ", generic_evals=", report.stats.generic_evals,
                ", chase_triggers=", report.stats.chase_triggers,
                ", hom_steps=", report.stats.hom_steps,
                ", repa_steps=", report.stats.repa_steps, "\n");
  out += StrCat("batch: plan stats: compiles=", report.stats.plan_compiles,
                ", cache_hits=", report.stats.plan_cache_hits,
                ", cache_misses=", report.stats.plan_cache_misses,
                ", guard_depth_fallbacks=",
                report.stats.guard_depth_fallbacks, "\n");
  const uint64_t lookups =
      report.stats.plan_cache_hits + report.stats.plan_cache_misses;
  if (lookups > 0) {
    std::snprintf(buf, sizeof(buf), "batch: plan cache hit rate: %.1f%%\n",
                  100.0 * static_cast<double>(report.stats.plan_cache_hits) /
                      static_cast<double>(lookups));
    out += buf;
  } else {
    out += "batch: plan cache hit rate: n/a (no lookups)\n";
  }
  std::snprintf(buf, sizeof(buf),
                "batch: phase ms: parse=%.2f chase=%.2f plan_compile=%.2f "
                "plan_bind=%.2f member_enum=%.2f hom=%.2f repa=%.2f\n",
                static_cast<double>(report.stats.parse_ns) / 1e6,
                static_cast<double>(report.stats.chase_ns) / 1e6,
                static_cast<double>(report.stats.plan_compile_ns) / 1e6,
                static_cast<double>(report.stats.plan_bind_ns) / 1e6,
                static_cast<double>(report.stats.member_enum_ns) / 1e6,
                static_cast<double>(report.stats.hom_search_ns) / 1e6,
                static_cast<double>(report.stats.repa_search_ns) / 1e6);
  out += buf;
  out += StrCat("batch: governance: chase_budget_trips=",
                report.stats.chase_budget_trips, ", deadline_trips=",
                report.stats.deadline_trips, ", cancelled_jobs=",
                report.stats.cancelled_jobs, ", governed_jobs=",
                report.governed_jobs, "\n");
  if (failed > 0) out += StrCat("batch: ", failed, " file(s) FAILED\n");
  return out;
}

}  // namespace ocdx
