#include "exec/batch_runner.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exec/pool.h"
#include "text/dx_parser.h"
#include "util/stopwatch.h"
#include "util/str.h"

namespace ocdx {

namespace {

/// Runs one planned slice: fresh Universe, fresh parse, one command.
/// This is the *entire* per-job state — nothing here outlives the call
/// or is visible to another job.
BatchJobResult RunJob(const BatchJob& job) {
  BatchJobResult result;
  Stopwatch timer;
  DxDriverOptions options = job.spec.options;
  // Each job gets its *own* plan cache (PlanCache is unsynchronized,
  // like everything else a job owns); the spec's context never carries
  // one across jobs.
  options.engine = options.engine.WithFreshCache();
  options.engine.stats = &result.stats;

  Universe universe;
  Result<DxScenario> scenario = ParseDxScenario(*job.source, &universe);
  if (!scenario.ok()) {
    result.status = scenario.status();
    result.millis = timer.ElapsedMillis();
    return result;
  }
  Result<std::string> text = RunDxCommand(scenario.value(), job.spec.command,
                                          &universe, options,
                                          &result.governed);
  if (!text.ok()) {
    result.status = text.status();
  } else {
    result.output = StrCat(job.spec.prefix, text.value());
  }
  // Cancellation has no in-engine trip counter (the flag is observed at
  // many sites); count it per job, where it is well-defined.
  if (result.governed.code() == StatusCode::kCancelled) {
    ++result.stats.cancelled_jobs;
  }
  result.millis = timer.ElapsedMillis();
  return result;
}

}  // namespace

Result<std::string> ReadDxFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrCat("cannot read '", path, "'"));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Result<std::string> RunDxFile(const std::string& path,
                              const std::string& source,
                              const std::string& command,
                              const DxDriverOptions& options,
                              Status* governed) {
  Universe universe;
  Result<DxScenario> scenario = ParseDxScenario(source, &universe);
  if (!scenario.ok()) {
    return Status(scenario.status().code(),
                  StrCat(path, ": ", scenario.status().message()));
  }
  return RunDxCommand(scenario.value(), command, &universe, options,
                      governed);
}

Result<BatchReport> RunDxBatch(const std::vector<std::string>& files,
                               const BatchOptions& options) {
  if (files.empty()) {
    return Status::InvalidArgument("batch needs at least one input file");
  }

  Stopwatch wall;
  BatchReport report;
  report.files.resize(files.size());

  // Planning pass (sequential, on the calling thread): read each file and
  // slice its command into independent jobs. The planning parse uses a
  // throwaway Universe; jobs re-parse into their own.
  std::vector<BatchJob> jobs;
  std::vector<std::pair<size_t, size_t>> file_job_ranges(files.size(),
                                                         {0, 0});
  for (size_t f = 0; f < files.size(); ++f) {
    report.files[f].file = files[f];
    file_job_ranges[f].first = jobs.size();

    Result<std::string> source = ReadDxFile(files[f]);
    if (!source.ok()) {
      report.files[f].status = source.status();
      file_job_ranges[f].second = jobs.size();
      continue;
    }
    auto shared_source =
        std::make_shared<const std::string>(std::move(source).value());

    std::vector<DxJobSpec> specs;
    DxDriverOptions base = options.driver;
    base.engine = options.engine;
    base.engine.stats = nullptr;
    if (options.split_scenarios) {
      Universe scoping;
      Result<DxScenario> scenario = ParseDxScenario(*shared_source, &scoping);
      if (!scenario.ok()) {
        report.files[f].status = scenario.status();
        file_job_ranges[f].second = jobs.size();
        continue;
      }
      Result<std::vector<DxJobSpec>> plan =
          PlanDxJobs(scenario.value(), options.command, base);
      if (!plan.ok()) {
        report.files[f].status = plan.status();
        file_job_ranges[f].second = jobs.size();
        continue;
      }
      specs = std::move(plan).value();
    } else {
      DxJobSpec spec;
      spec.command = options.command;
      spec.options = base;
      specs.push_back(std::move(spec));
    }

    for (DxJobSpec& spec : specs) {
      BatchJob job;
      job.index = jobs.size();
      job.file_index = f;
      job.file = files[f];
      job.source = shared_source;
      job.spec = std::move(spec);
      jobs.push_back(std::move(job));
    }
    file_job_ranges[f].second = jobs.size();
  }
  report.total_jobs = jobs.size();

  // Execution. Results land in submission-indexed slots, so assembly
  // below is independent of completion order; workers share nothing but
  // the (read-only) job list and their disjoint result slots.
  std::vector<BatchJobResult> results(jobs.size());
  if (options.workers <= 1) {
    for (size_t i = 0; i < jobs.size(); ++i) results[i] = RunJob(jobs[i]);
  } else {
    ThreadPool pool(options.workers);
    for (size_t i = 0; i < jobs.size(); ++i) {
      const BatchJob* job = &jobs[i];
      BatchJobResult* slot = &results[i];
      pool.Submit([job, slot] { *slot = RunJob(*job); });
    }
    // ~ThreadPool drains the queue and joins.
  }

  // Deterministic assembly in plan order.
  for (size_t f = 0; f < files.size(); ++f) {
    BatchFileReport& fr = report.files[f];
    for (size_t i = file_job_ranges[f].first; i < file_job_ranges[f].second;
         ++i) {
      ++fr.jobs;
      fr.millis += results[i].millis;
      report.stats += results[i].stats;
      if (!results[i].governed.ok()) {
        ++report.governed_jobs;
        if (fr.governed.ok()) fr.governed = results[i].governed;
      }
      if (results[i].status.ok()) {
        fr.output += results[i].output;
      } else {
        fr.output += StrCat(jobs[i].spec.prefix, "ocdx: error: ",
                            results[i].status.ToString(), "\n");
        if (fr.status.ok()) fr.status = results[i].status;
      }
    }
  }
  report.wall_millis = wall.ElapsedMillis();
  return report;
}

std::string RenderBatchOutput(const BatchReport& report) {
  std::string out;
  for (const BatchFileReport& f : report.files) {
    out += StrCat("==> ", f.file, " <==\n");
    if (f.jobs == 0 && !f.status.ok()) {
      // Planning-level failure (unreadable file, parse error, no
      // applicable inputs): still rendered deterministically.
      out += StrCat("ocdx: error: ", f.status.ToString(), "\n");
    } else {
      out += f.output;
    }
  }
  return out;
}

std::string RenderBatchSummary(const BatchReport& report,
                               const BatchOptions& options) {
  size_t failed = 0;
  double job_millis = 0;
  for (const BatchFileReport& f : report.files) {
    if (!f.status.ok()) ++failed;
    job_millis += f.millis;
  }
  std::string out = StrCat(
      "batch: ", report.files.size(), " file(s), ", report.total_jobs,
      " job(s), ", options.workers, " worker(s), command=", options.command,
      "\n");
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "batch: wall %.2f ms, cpu (sum of jobs) %.2f ms, "
                "speedup %.2fx\n",
                report.wall_millis, job_millis,
                report.wall_millis > 0 ? job_millis / report.wall_millis
                                       : 0.0);
  out += buf;
  out += StrCat("batch: engine stats: cq_plans=", report.stats.cq_plans,
                ", generic_evals=", report.stats.generic_evals,
                ", chase_triggers=", report.stats.chase_triggers,
                ", hom_steps=", report.stats.hom_steps,
                ", repa_steps=", report.stats.repa_steps, "\n");
  out += StrCat("batch: plan stats: compiles=", report.stats.plan_compiles,
                ", cache_hits=", report.stats.plan_cache_hits,
                ", cache_misses=", report.stats.plan_cache_misses,
                ", guard_depth_fallbacks=",
                report.stats.guard_depth_fallbacks, "\n");
  out += StrCat("batch: governance: chase_budget_trips=",
                report.stats.chase_budget_trips, ", deadline_trips=",
                report.stats.deadline_trips, ", cancelled_jobs=",
                report.stats.cancelled_jobs, ", governed_jobs=",
                report.governed_jobs, "\n");
  if (failed > 0) out += StrCat("batch: ", failed, " file(s) FAILED\n");
  return out;
}

}  // namespace ocdx
