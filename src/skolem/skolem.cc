#include "skolem/skolem.h"

#include <set>

#include "logic/parser.h"
#include "semantics/iso_enum.h"
#include "util/str.h"

namespace ocdx {

std::map<std::string, size_t> MappingFunctions(const Mapping& mapping) {
  std::map<std::string, size_t> out;
  for (const AnnotatedStd& std_ : mapping.stds()) {
    for (const auto& [name, arity] : FunctionsIn(std_.body)) {
      out[name] = arity;
    }
    for (const HeadAtom& atom : std_.head) {
      for (const Term& t : atom.terms) {
        if (t.IsFunc()) out[t.name] = t.args.size();
      }
    }
  }
  return out;
}

namespace {

Term SkolemizeTerm(const Term& t, const std::map<std::string, Term>& subst) {
  if (t.IsVar()) {
    auto it = subst.find(t.name);
    if (it != subst.end()) return it->second;
  }
  return t;
}

}  // namespace

Result<Mapping> Skolemize(const Mapping& mapping) {
  OCDX_RETURN_IF_ERROR(mapping.Validate(/*allow_functions=*/false));
  Mapping out(mapping.source(), mapping.target());
  for (size_t i = 0; i < mapping.stds().size(); ++i) {
    const AnnotatedStd& std_ = mapping.stds()[i];
    std::vector<Term> body_var_terms;
    for (const std::string& v : std_.BodyVars()) {
      body_var_terms.push_back(Term::Var(v));
    }
    std::map<std::string, Term> subst;
    for (const std::string& z : std_.ExistentialVars()) {
      subst[z] = Term::Func(StrCat("sk_", i, "_", z), body_var_terms);
    }
    AnnotatedStd sk = std_;
    for (HeadAtom& atom : sk.head) {
      for (Term& t : atom.terms) t = SkolemizeTerm(t, subst);
    }
    out.AddStd(std::move(sk));
  }
  OCDX_RETURN_IF_ERROR(out.Validate(/*allow_functions=*/true));
  return out;
}

Result<Mapping> EnsureSkolemized(const Mapping& mapping) {
  bool has_existential = false;
  for (const AnnotatedStd& std_ : mapping.stds()) {
    if (!std_.ExistentialVars().empty()) {
      has_existential = true;
      break;
    }
  }
  if (!has_existential) return mapping;
  if (mapping.IsSkolemized()) {
    return Status::InvalidArgument(
        "mapping mixes existential head variables with function terms; "
        "Skolemize the existential variables explicitly");
  }
  return Skolemize(mapping);
}

Result<Value> TableOracle::Apply(const std::string& func, const Tuple& args) {
  auto it = table_.find({func, args});
  if (it == table_.end()) {
    return Status::NotFound(
        StrCat("no interpretation for ground term ", func, "/", args.size()));
  }
  return it->second;
}

Result<Value> TermNullOracle::Apply(const std::string& func,
                                    const Tuple& args) {
  auto key = std::make_pair(func, args);
  auto it = slots_.find(key);
  if (it != slots_.end()) return it->second;
  NullInfo info;
  info.var = func;
  info.witness = universe_->InternWitness(args);
  info.label = StrCat("t_", func, slots_.size());
  Value null = universe_->MintNull(std::move(info));
  slots_.emplace(key, null);
  return null;
}

Result<Value> RecordingOracle::Apply(const std::string& func,
                                     const Tuple& args) {
  Result<Value> hit = table_->Apply(func, args);
  if (hit.ok()) return hit;
  auto key = std::make_pair(func, args);
  auto it = placeholders_.find(key);
  if (it != placeholders_.end()) return it->second;
  NullInfo info;
  info.var = func;
  info.witness = universe_->InternWitness(args);
  info.label = StrCat("p_", func, placeholders_.size());
  Value null = universe_->MintNull(std::move(info));
  placeholders_.emplace(key, null);
  return null;
}

namespace {

Result<Value> EvalSkolemHeadTerm(const Term& t, const Env& env,
                                 FunctionOracle* oracle) {
  switch (t.kind) {
    case Term::Kind::kConst:
      return t.constant;
    case Term::Kind::kVar: {
      auto it = env.find(t.name);
      if (it == env.end()) {
        return Status::InvalidArgument(
            StrCat("SkSTD head variable '", t.name,
                   "' is not a body variable (SkSTDs have no existential "
                   "variables)"));
      }
      return it->second;
    }
    case Term::Kind::kFunc: {
      Tuple args;
      args.reserve(t.args.size());
      for (const Term& a : t.args) {
        OCDX_ASSIGN_OR_RETURN(Value v, EvalSkolemHeadTerm(a, env, oracle));
        args.push_back(v);
      }
      return oracle->Apply(t.name, args);
    }
  }
  return Status::Internal("unknown term kind");
}

}  // namespace

namespace {

// A function term occurring in a rule body, together with the positive
// relational atoms conjoined with it (its *guards*). Only argument
// bindings satisfying the guards can influence the rule: if a binding
// violates a guard, the enclosing conjunction is false no matter what
// value the function takes.
struct FuncSite {
  Term func;
  std::vector<FormulaPtr> guards;
};

void CollectTermSites(const Term& t, const std::vector<FormulaPtr>& guards,
                      std::vector<FuncSite>* out, bool* nested) {
  if (t.IsFunc()) {
    out->push_back({t, guards});
    for (const Term& a : t.args) {
      if (a.IsFunc()) *nested = true;
    }
  }
  for (const Term& a : t.args) CollectTermSites(a, guards, out, nested);
}

// Positive relational atoms reachable through nested And / Exists.
void GatherGuardAtoms(const FormulaPtr& f, std::vector<FormulaPtr>* atoms) {
  switch (f->kind()) {
    case Formula::Kind::kAtom:
      atoms->push_back(f);
      return;
    case Formula::Kind::kAnd:
      for (const FormulaPtr& c : f->children()) GatherGuardAtoms(c, atoms);
      return;
    case Formula::Kind::kExists:
      GatherGuardAtoms(f->children()[0], atoms);
      return;
    default:
      return;
  }
}

// Drops guards that mention any of `vars` (rebinding invalidates them).
std::vector<FormulaPtr> DropShadowed(const std::vector<FormulaPtr>& guards,
                                     const std::vector<std::string>& vars) {
  std::vector<FormulaPtr> out;
  for (const FormulaPtr& g : guards) {
    bool shadowed = false;
    for (const std::string& v : FreeVars(g)) {
      for (const std::string& b : vars) {
        if (v == b) shadowed = true;
      }
    }
    if (!shadowed) out.push_back(g);
  }
  return out;
}

void CollectFuncSites(const FormulaPtr& f, std::vector<FormulaPtr> guards,
                      std::vector<FuncSite>* out, bool* nested) {
  switch (f->kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return;
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
      for (const Term& t : f->terms()) {
        CollectTermSites(t, guards, out, nested);
      }
      return;
    case Formula::Kind::kAnd: {
      std::vector<FormulaPtr> inner = guards;
      GatherGuardAtoms(f, &inner);
      for (const FormulaPtr& c : f->children()) {
        CollectFuncSites(c, inner, out, nested);
      }
      return;
    }
    case Formula::Kind::kOr:
    case Formula::Kind::kNot:
    case Formula::Kind::kImplies:
      for (const FormulaPtr& c : f->children()) {
        CollectFuncSites(c, guards, out, nested);
      }
      return;
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      std::vector<FormulaPtr> filtered = DropShadowed(guards, f->bound());
      // Atoms *inside* the quantifier still guard sites inside it; the
      // recursive kAnd case collects them.
      CollectFuncSites(f->children()[0], filtered, out, nested);
      return;
    }
  }
}

}  // namespace

Result<SlotSet> DemandedBodySlots(const Mapping& mapping,
                                  const Instance& source,
                                  Universe* universe,
                                  const EngineContext& ctx) {
  SlotSet out;
  std::vector<Value> adom = source.ActiveDomain();
  Evaluator eval(source, *universe, ctx);

  for (const AnnotatedStd& std_ : mapping.stds()) {
    std::vector<FuncSite> sites;
    bool nested = false;
    CollectFuncSites(std_.body, {}, &sites, &nested);
    if (nested) {
      return Status::Unimplemented(
          "nested function terms in rule bodies are not supported");
    }
    for (const FuncSite& site : sites) {
      // Argument variables and which of them the guards bind.
      std::vector<std::string> arg_vars;
      for (const Term& a : site.func.args) {
        if (a.IsVar()) arg_vars.push_back(a.name);
      }
      std::set<std::string> guard_vars;
      FormulaPtr guard_conj = Formula::And(site.guards);
      for (const std::string& v : FreeVars(guard_conj)) guard_vars.insert(v);

      std::vector<std::string> bound_args;
      for (const std::string& v : arg_vars) {
        if (guard_vars.count(v)) bound_args.push_back(v);
      }
      // Deduplicate while preserving order.
      std::vector<std::string> uniq;
      for (const std::string& v : bound_args) {
        if (std::find(uniq.begin(), uniq.end(), v) == uniq.end()) {
          uniq.push_back(v);
        }
      }

      // Bindings of the guard-bound argument variables.
      std::vector<Tuple> bindings;
      if (uniq.empty()) {
        bindings.push_back(Tuple{});
      } else {
        std::vector<std::string> other;
        for (const std::string& v : FreeVars(guard_conj)) {
          if (std::find(uniq.begin(), uniq.end(), v) == uniq.end()) {
            other.push_back(v);
          }
        }
        FormulaPtr projected =
            Formula::Exists(std::move(other), guard_conj);
        OCDX_ASSIGN_OR_RETURN(Relation rel, eval.Answers(projected, uniq));
        bindings = rel.SortedTuples();
      }

      // Materialize slots: guard-bound vars from bindings, unbound vars
      // from the full active domain, constants as themselves.
      for (const Tuple& binding : bindings) {
        Env env;
        for (size_t i = 0; i < uniq.size(); ++i) env[uniq[i]] = binding[i];
        // Odometer over unbound argument variables.
        std::vector<std::string> unbound;
        for (const std::string& v : arg_vars) {
          if (!guard_vars.count(v) &&
              std::find(unbound.begin(), unbound.end(), v) == unbound.end()) {
            unbound.push_back(v);
          }
        }
        std::vector<size_t> idx(unbound.size(), 0);
        if (!unbound.empty() && adom.empty()) continue;
        while (true) {
          for (size_t i = 0; i < unbound.size(); ++i) {
            env[unbound[i]] = adom[idx[i]];
          }
          Tuple args;
          bool ok = true;
          for (const Term& a : site.func.args) {
            if (a.IsConst()) {
              args.push_back(a.constant);
            } else if (a.IsVar()) {
              auto it = env.find(a.name);
              if (it == env.end()) {
                ok = false;
                break;
              }
              args.push_back(it->second);
            }
          }
          if (ok) out.insert({site.func.name, args});
          // Advance.
          size_t p = unbound.size();
          bool done = unbound.empty();
          while (p > 0) {
            --p;
            if (++idx[p] < adom.size()) break;
            idx[p] = 0;
            if (p == 0) done = true;
          }
          if (done) break;
        }
      }
    }
  }
  return out;
}

Result<AnnotatedInstance> SolveSkolem(const Mapping& mapping,
                                      const Instance& source,
                                      FunctionOracle* oracle,
                                      Universe* universe,
                                      const EngineContext& ctx) {
  OCDX_RETURN_IF_ERROR(mapping.Validate(/*allow_functions=*/true));
  OCDX_RETURN_IF_ERROR(mapping.source().Validate(source));

  AnnotatedInstance out;
  for (const RelationDecl& decl : mapping.target().decls()) {
    out.GetOrCreate(decl.name, decl.arity());
  }

  // Extend the evaluation domain with the images of the *demanded* body
  // slots (guard analysis), so that equalities y = f(z-bar) can bind y.
  std::vector<Value> extra_domain;
  {
    OCDX_ASSIGN_OR_RETURN(SlotSet slots,
                          DemandedBodySlots(mapping, source, universe, ctx));
    std::set<Value> images;
    for (const auto& [func, args] : slots) {
      Result<Value> img = oracle->Apply(func, args);
      if (img.ok()) images.insert(img.value());
    }
    extra_domain.assign(images.begin(), images.end());
  }

  Evaluator eval(source, *universe, ctx);
  eval.AddDomainValues(extra_domain);
  eval.set_function_oracle(oracle);

  for (const AnnotatedStd& std_ : mapping.stds()) {
    if (!std_.ExistentialVars().empty()) {
      return Status::InvalidArgument(
          "SkSTD heads must use only body variables and function terms "
          "(run Skolemize() first)");
    }
    const std::vector<std::string> body_vars = std_.BodyVars();

    std::vector<Tuple> witnesses;
    if (body_vars.empty()) {
      OCDX_ASSIGN_OR_RETURN(bool holds, eval.Holds(std_.body));
      if (holds) witnesses.push_back(Tuple{});
    } else {
      OCDX_ASSIGN_OR_RETURN(Relation answers,
                            eval.Answers(std_.body, body_vars));
      witnesses = answers.SortedTuples();
    }

    if (witnesses.empty()) {
      for (const HeadAtom& atom : std_.head) {
        out.Add(atom.rel, AnnotatedTuple::EmptyMarker(atom.ann));
      }
      continue;
    }
    for (const Tuple& w : witnesses) {
      Env env;
      for (size_t i = 0; i < body_vars.size(); ++i) env[body_vars[i]] = w[i];
      for (const HeadAtom& atom : std_.head) {
        Tuple t;
        t.reserve(atom.terms.size());
        for (const Term& term : atom.terms) {
          OCDX_ASSIGN_OR_RETURN(Value v,
                                EvalSkolemHeadTerm(term, env, oracle));
          t.push_back(v);
        }
        out.Add(atom.rel, AnnotatedTuple(std::move(t), atom.ann));
      }
    }
  }
  return out;
}

namespace {

// Do any function terms occur in rule *bodies*?
bool HasBodyFunctions(const Mapping& mapping) {
  for (const AnnotatedStd& std_ : mapping.stds()) {
    if (!FunctionsIn(std_.body).empty()) return true;
  }
  return false;
}

// Applies a valuation to every proper tuple of an annotated instance.
AnnotatedInstance ApplyValuationAnnotated(const AnnotatedInstance& t,
                                          const Valuation& v) {
  AnnotatedInstance out;
  for (const auto& [name, rel] : t.relations()) {
    AnnotatedRelation& dst = out.GetOrCreate(name, rel.arity());
    for (const AnnotatedTupleRef& at : rel.tuples()) {
      if (at.IsEmptyMarker()) {
        dst.Add(at);
      } else {
        Tuple mapped = v.Apply(at.values);
        dst.Add(AnnotatedTupleRef{mapped, at.ann});
      }
    }
  }
  return out;
}

}  // namespace

Result<SkolemMembership> InSkolemSemantics(const Mapping& mapping,
                                           const Instance& source,
                                           const Instance& target,
                                           Universe* universe,
                                           SkolemMembershipOptions options,
                                           const EngineContext& ctx) {
  if (!target.IsGround()) {
    return Status::InvalidArgument(
        "SkSTD semantics membership is defined for ground targets");
  }
  // `call_ctx` gains a plan cache only on the explicit-enumeration path
  // below: that path re-evaluates the same SkSTD bodies once per
  // candidate interpretation, while the term-keyed fast path solves
  // exactly once and would pay cache setup for nothing.
  EngineContext call_ctx = ctx;
  for (const AnnotatedStd& std_ : mapping.stds()) {
    if (!std_.ExistentialVars().empty()) {
      // Plain STD rules: Skolemize first (Lemma 4), then decide.
      OCDX_ASSIGN_OR_RETURN(Mapping skolemized, EnsureSkolemized(mapping));
      return InSkolemSemantics(skolemized, source, target, universe, options,
                               call_ctx);
    }
  }
  SkolemMembership out;

  if (!HasBodyFunctions(mapping)) {
    // Exact term-keyed path (the F' ~ v correspondence of Lemma 4):
    // every ground head term becomes a null; a valuation of those nulls
    // is exactly an interpretation of the used slots.
    TermNullOracle oracle(universe);
    OCDX_ASSIGN_OR_RETURN(AnnotatedInstance sol,
                          SolveSkolem(mapping, source, &oracle, universe, call_ctx));
    OCDX_ASSIGN_OR_RETURN(out.member,
                          InRepA(sol, target, nullptr, options.repa, call_ctx));
    out.exhaustive = true;
    out.method = "term-keyed nulls (Lemma 4)";
    out.interpretations_checked = 1;
    return out;
  }

  // Explicit enumeration of interpretations.
  call_ctx.EnsureCache();
  // Phase 1: the *demanded* body slots (guard analysis): only these can
  // change which witnesses fire. Phase 2: head-term slots demanded during
  // each solve, discovered as placeholder nulls and valuated afterwards.
  OCDX_ASSIGN_OR_RETURN(SlotSet demanded,
                        DemandedBodySlots(mapping, source, universe, call_ctx));

  // Distinguished constants: everything the target / mapping can "see".
  std::vector<Value> adom = source.ActiveDomain();
  std::set<Value> fixed_set(adom.begin(), adom.end());
  for (Value v : target.ActiveDomain()) fixed_set.insert(v);
  for (const AnnotatedStd& std_ : mapping.stds()) {
    for (Value v : ConstantsIn(std_.body)) fixed_set.insert(v);
    for (const HeadAtom& atom : std_.head) {
      for (const Term& t : atom.terms) {
        if (t.IsConst()) fixed_set.insert(t.constant);
      }
    }
  }
  std::vector<Value> fixed(fixed_set.begin(), fixed_set.end());

  // Phase-1 slot handles, one placeholder null per demanded body slot.
  std::vector<std::pair<std::string, Tuple>> slots(demanded.begin(),
                                                   demanded.end());
  std::vector<Value> slot_nulls;
  for (size_t i = 0; i < slots.size(); ++i) {
    slot_nulls.push_back(universe->FreshNull(StrCat("s", i)));
  }

  out.method = "explicit F' enumeration (two-phase, up to isomorphism)";
  // Both interpretation loops share one deadline/cancellation gauge
  // (logic/budget.h): the space is exponential in the slot count, and the
  // per-interpretation solves alone do not poll often enough.
  BudgetGauge gauge(call_ctx.budget, call_ctx.stats);
  ValuationEnumerator phase1(slot_nulls, fixed, universe);
  Valuation v1;
  while (phase1.Next(&v1)) {
    OCDX_RETURN_IF_ERROR(gauge.Tick());
    if (++out.interpretations_checked > options.max_interpretations) {
      out.exhaustive = false;
      return out;
    }
    TableOracle table;
    std::vector<Value> phase1_images;
    for (size_t i = 0; i < slots.size(); ++i) {
      Value img = v1.Apply(slot_nulls[i]);
      table.Set(slots[i].first, slots[i].second, img);
      phase1_images.push_back(img);
    }
    RecordingOracle oracle(&table, universe);
    Result<AnnotatedInstance> sol =
        SolveSkolem(mapping, source, &oracle, universe, call_ctx);
    if (!sol.ok()) return sol.status();

    // Phase 2: valuate the placeholder (head-slot) nulls that actually
    // reached solution tuples; placeholders that only entered the
    // evaluation domain are irrelevant.
    std::set<Value> in_tuples;
    for (Value v : sol.value().Nulls()) in_tuples.insert(v);
    std::vector<Value> phase2_nulls;
    for (const auto& [slot, null] : oracle.placeholders()) {
      if (in_tuples.count(null)) phase2_nulls.push_back(null);
    }
    std::vector<Value> fixed2 = fixed;
    for (Value v : phase1_images) fixed2.push_back(v);
    ValuationEnumerator phase2(phase2_nulls, fixed2, universe);
    Valuation v2;
    while (phase2.Next(&v2)) {
      OCDX_RETURN_IF_ERROR(gauge.Tick());
      if (++out.interpretations_checked > options.max_interpretations) {
        out.exhaustive = false;
        return out;
      }
      AnnotatedInstance ground = ApplyValuationAnnotated(sol.value(), v2);
      OCDX_ASSIGN_OR_RETURN(
          bool member, InRepA(ground, target, nullptr, options.repa, call_ctx));
      if (member) {
        out.member = true;
        return out;
      }
    }
  }
  out.member = false;
  return out;
}

std::string ToSecondOrderSentence(const Mapping& mapping,
                                  const Universe& universe) {
  std::map<std::string, size_t> funcs = MappingFunctions(mapping);
  std::string out;
  if (!funcs.empty()) {
    out += "exists";
    for (const auto& [name, arity] : funcs) {
      out += " ";
      out += name;
      out += "/";
      out += std::to_string(arity);
    }
    out += " . ";
  }
  bool first = true;
  for (const AnnotatedStd& std_ : mapping.stds()) {
    if (!first) out += " & ";
    first = false;
    std::vector<std::string> vars = std_.BodyVars();
    out += "forall ";
    out += Join(vars, " ");
    out += ". (";
    out += std_.body->ToString(universe);
    out += " -> ";
    std::vector<std::string> atoms;
    for (const HeadAtom& atom : std_.head) {
      atoms.push_back(atom.ToString(universe));
    }
    out += Join(atoms, " & ");
    out += ")";
  }
  return out;
}

}  // namespace ocdx
