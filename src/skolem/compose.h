// Syntactic composition of annotated SkSTD mappings (Lemma 5, Theorem 5).
//
// Given mappings Sigma_alpha : sigma -> tau and Delta_alpha' : tau ->
// omega, the algorithm produces Gamma_alpha' : sigma -> omega with
// (|Gamma_alpha'|) = (|Sigma_alpha|) o (|Delta_alpha'|), provided either
//   * Delta is all-open with monotone (in [FKPT05]: CQ) rule bodies, or
//   * Sigma is all-closed (arbitrary FO bodies) —
// the two composition-closed classes of Theorem 5.
//
// The algorithm (following the proof of Lemma 5, which adapts [FKPT05]):
//   1. rename function symbols apart,
//   2. put Sigma in normal form (one head atom per rule),
//   3. in every Delta rule body, replace each tau-atom R(y-bar) by
//      beta_R(y-bar) = OR_j exists z-bar_j (phi_j(z-bar_j) AND
//      y-bar = u-bar_j)
//      over the normal-form Sigma-rules R(u-bar_j) :- phi_j(z-bar_j),
//      with the z-bar_j freshly renamed,
//   4. if both inputs are CQ mappings, flatten the result back to
//      CQ-SkSTDs (distribute disjunctions, drop the now-redundant
//      existential quantifiers).
//
// Left-hand sides and annotations of Delta are preserved verbatim.

#ifndef OCDX_SKOLEM_COMPOSE_H_
#define OCDX_SKOLEM_COMPOSE_H_

#include "logic/engine_context.h"
#include "mapping/mapping.h"
#include "skolem/skolem.h"
#include "util/status.h"

namespace ocdx {

struct ComposeSkolemResult {
  Mapping gamma;
  /// True iff step 4 ran (both inputs CQ) and every output body is a CQ.
  bool flattened_to_cq = false;
};

/// Runs the Lemma 5 algorithm. `sigma.target()` must declare the same
/// relations as `delta.source()`. The construction itself is performed
/// for any inputs; it is guaranteed to *capture the composition* only for
/// the Theorem 5 classes (all-open+monotone Delta, or all-closed Sigma) —
/// callers can check those predicates on the inputs.
Result<ComposeSkolemResult> ComposeSkolem(const Mapping& sigma,
                                          const Mapping& delta,
                                          Universe* universe);

/// Semantic composition membership for SkSTD mappings restricted to the
/// Theorem 5 classes: decides (S, W) in (|Sigma|) o (|Delta|) by
/// enumerating Sigma-interpretations (up to isomorphism) and taking the
/// intermediate J = rel(Sol_{F'}(S)) — complete when Sigma is all-closed
/// (RepA is then a singleton), and when Delta is all-open with monotone
/// bodies (Claim 8: the minimal J suffices).
Result<SkolemMembership> InSkolemComposition(
    const Mapping& sigma, const Mapping& delta, const Instance& source,
    const Instance& target, Universe* universe,
    SkolemMembershipOptions options = {},
    const EngineContext& ctx = EngineContext());

}  // namespace ocdx

#endif  // OCDX_SKOLEM_COMPOSE_H_
