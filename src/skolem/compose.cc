#include "skolem/compose.h"

#include <functional>
#include <set>

#include "logic/classify.h"
#include "semantics/iso_enum.h"
#include "util/str.h"

namespace ocdx {

namespace {

// One normal-form Sigma rule: a single head atom and its body.
struct NormalRule {
  HeadAtom atom;
  FormulaPtr body;
};

// Collects term variables.
void TermVars(const Term& t, std::set<std::string>* out) {
  if (t.IsVar()) out->insert(t.name);
  for (const Term& a : t.args) TermVars(a, out);
}

// Applies a variable renaming to a term.
Term RenameTermVars(const Term& t,
                    const std::map<std::string, std::string>& ren) {
  Term out = t;
  if (out.IsVar()) {
    auto it = ren.find(out.name);
    if (it != ren.end()) out.name = it->second;
  }
  for (Term& a : out.args) a = RenameTermVars(a, ren);
  return out;
}

// Rewrites every tau-atom of `f` through beta_R. `counter` generates
// globally fresh variable names.
class BetaRewriter {
 public:
  BetaRewriter(const std::map<std::string, std::vector<NormalRule>>& rules,
               const Schema& tau, size_t* counter)
      : rules_(rules), tau_(tau), counter_(counter) {}

  Result<FormulaPtr> Rewrite(const FormulaPtr& f) {
    switch (f->kind()) {
      case Formula::Kind::kTrue:
      case Formula::Kind::kFalse:
      case Formula::Kind::kEquals:
        return f;
      case Formula::Kind::kAtom:
        return RewriteAtom(f);
      case Formula::Kind::kNot: {
        OCDX_ASSIGN_OR_RETURN(FormulaPtr c, Rewrite(f->children()[0]));
        return Formula::Not(std::move(c));
      }
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        std::vector<FormulaPtr> cs;
        for (const FormulaPtr& c : f->children()) {
          OCDX_ASSIGN_OR_RETURN(FormulaPtr r, Rewrite(c));
          cs.push_back(std::move(r));
        }
        return f->kind() == Formula::Kind::kAnd ? Formula::And(std::move(cs))
                                                : Formula::Or(std::move(cs));
      }
      case Formula::Kind::kImplies: {
        OCDX_ASSIGN_OR_RETURN(FormulaPtr a, Rewrite(f->children()[0]));
        OCDX_ASSIGN_OR_RETURN(FormulaPtr b, Rewrite(f->children()[1]));
        return Formula::Implies(std::move(a), std::move(b));
      }
      case Formula::Kind::kExists:
      case Formula::Kind::kForall: {
        OCDX_ASSIGN_OR_RETURN(FormulaPtr c, Rewrite(f->children()[0]));
        return f->kind() == Formula::Kind::kExists
                   ? Formula::Exists(f->bound(), std::move(c))
                   : Formula::Forall(f->bound(), std::move(c));
      }
    }
    return Status::Internal("unknown formula kind");
  }

 private:
  Result<FormulaPtr> RewriteAtom(const FormulaPtr& atom) {
    if (!tau_.Contains(atom->rel())) {
      return Status::InvalidArgument(
          StrCat("Delta body atom '", atom->rel(),
                 "' is not a relation of the intermediate schema"));
    }
    auto it = rules_.find(atom->rel());
    if (it == rules_.end()) {
      // No Sigma rule produces this relation: beta_R = false. (Validated
      // mappings cover every target relation, so this cannot happen for
      // validated Sigma.)
      return Formula::False();
    }
    std::vector<FormulaPtr> disjuncts;
    for (const NormalRule& rule : it->second) {
      // Freshly rename the sigma-rule's variables.
      std::set<std::string> vars;
      for (const std::string& v : FreeVars(rule.body)) vars.insert(v);
      for (const Term& t : rule.atom.terms) TermVars(t, &vars);
      std::map<std::string, std::string> ren;
      std::vector<std::string> fresh_names;
      for (const std::string& v : vars) {
        std::string fresh = StrCat("v", (*counter_)++);
        ren[v] = fresh;
        fresh_names.push_back(fresh);
      }
      FormulaPtr body = RenameVars(rule.body, ren);
      // y-bar = u-bar_j equalities.
      std::vector<FormulaPtr> conj = {body};
      for (size_t p = 0; p < atom->terms().size(); ++p) {
        conj.push_back(Formula::Eq(atom->terms()[p],
                                   RenameTermVars(rule.atom.terms[p], ren)));
      }
      disjuncts.push_back(
          Formula::Exists(std::move(fresh_names), Formula::And(std::move(conj))));
    }
    return Formula::Or(std::move(disjuncts));
  }

  const std::map<std::string, std::vector<NormalRule>>& rules_;
  const Schema& tau_;
  size_t* counter_;
};

// DNF of a positive-existential formula as lists of atomic conjuncts,
// with existential quantifiers dropped (sound for SkSTD bodies whose
// quantified variables are globally fresh, per Lemma 5's proof). Returns
// Unimplemented if the formula is not positive-existential.
Status DnfConjuncts(const FormulaPtr& f,
                    std::vector<std::vector<FormulaPtr>>* out) {
  switch (f->kind()) {
    case Formula::Kind::kTrue:
      out->push_back({});
      return Status::OK();
    case Formula::Kind::kFalse:
      return Status::OK();
    case Formula::Kind::kAtom:
    case Formula::Kind::kEquals:
      out->push_back({f});
      return Status::OK();
    case Formula::Kind::kAnd: {
      std::vector<std::vector<FormulaPtr>> acc = {{}};
      for (const FormulaPtr& c : f->children()) {
        std::vector<std::vector<FormulaPtr>> child;
        OCDX_RETURN_IF_ERROR(DnfConjuncts(c, &child));
        std::vector<std::vector<FormulaPtr>> next;
        for (const auto& a : acc) {
          for (const auto& b : child) {
            std::vector<FormulaPtr> merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      out->insert(out->end(), acc.begin(), acc.end());
      return Status::OK();
    }
    case Formula::Kind::kOr: {
      for (const FormulaPtr& c : f->children()) {
        OCDX_RETURN_IF_ERROR(DnfConjuncts(c, out));
      }
      return Status::OK();
    }
    case Formula::Kind::kExists:
      return DnfConjuncts(f->children()[0], out);
    default:
      return Status::Unimplemented(
          "CQ flattening applies only to positive-existential bodies");
  }
}

}  // namespace

Result<ComposeSkolemResult> ComposeSkolem(const Mapping& sigma,
                                          const Mapping& delta,
                                          Universe* universe) {
  (void)universe;
  OCDX_RETURN_IF_ERROR(sigma.Validate(/*allow_functions=*/true));
  OCDX_RETURN_IF_ERROR(delta.Validate(/*allow_functions=*/true));

  // Lemma 5 operates on SkSTDs; Skolemize plain STD inputs (Lemma 4).
  {
    OCDX_ASSIGN_OR_RETURN(Mapping s, EnsureSkolemized(sigma));
    OCDX_ASSIGN_OR_RETURN(Mapping d, EnsureSkolemized(delta));
    bool changed = s.IsSkolemized() != sigma.IsSkolemized() ||
                   d.IsSkolemized() != delta.IsSkolemized();
    if (changed) return ComposeSkolem(s, d, universe);
  }

  // Schema compatibility: sigma's target is delta's source.
  for (const RelationDecl& d : delta.source().decls()) {
    const RelationDecl* s = sigma.target().Find(d.name);
    if (s == nullptr || s->arity() != d.arity()) {
      return Status::InvalidArgument(
          StrCat("intermediate schemas differ on relation '", d.name, "'"));
    }
  }

  // Step 1: rename sigma's function symbols apart from delta's.
  Mapping sigma_r = sigma;
  {
    std::map<std::string, size_t> sf = MappingFunctions(sigma);
    std::map<std::string, size_t> df = MappingFunctions(delta);
    std::map<std::string, std::string> ren;
    for (const auto& [name, arity] : sf) {
      if (df.count(name)) ren[name] = name + "#s";
    }
    if (!ren.empty()) {
      Mapping renamed(sigma.source(), sigma.target());
      for (const AnnotatedStd& std_ : sigma.stds()) {
        AnnotatedStd r = std_;
        r.body = RenameFunctions(r.body, ren);
        for (HeadAtom& atom : r.head) {
          for (Term& t : atom.terms) {
            // Rename function symbols in head terms.
            std::function<void(Term&)> rec = [&](Term& term) {
              if (term.IsFunc()) {
                auto it = ren.find(term.name);
                if (it != ren.end()) term.name = it->second;
              }
              for (Term& a : term.args) rec(a);
            };
            rec(t);
          }
        }
        renamed.AddStd(std::move(r));
      }
      sigma_r = std::move(renamed);
    }
  }

  // Step 2: normal form of sigma (one head atom per rule).
  std::map<std::string, std::vector<NormalRule>> rules;
  for (const AnnotatedStd& std_ : sigma_r.stds()) {
    for (const HeadAtom& atom : std_.head) {
      rules[atom.rel].push_back(NormalRule{atom, std_.body});
    }
  }

  // Step 3: rewrite each delta body through beta_R.
  size_t counter = 0;
  BetaRewriter rewriter(rules, delta.source(), &counter);
  Mapping gamma(sigma.source(), delta.target());
  for (const AnnotatedStd& std_ : delta.stds()) {
    AnnotatedStd g = std_;
    OCDX_ASSIGN_OR_RETURN(g.body, rewriter.Rewrite(std_.body));
    gamma.AddStd(std::move(g));
  }

  ComposeSkolemResult out{std::move(gamma), false};

  // Step 4: CQ flattening when both inputs are CQ mappings.
  if (sigma.HasCQBodies() && delta.HasCQBodies()) {
    Mapping flat(out.gamma.source(), out.gamma.target());
    bool ok = true;
    for (const AnnotatedStd& std_ : out.gamma.stds()) {
      std::vector<std::vector<FormulaPtr>> dnf;
      Status st = DnfConjuncts(std_.body, &dnf);
      if (!st.ok()) {
        ok = false;
        break;
      }
      for (auto& conjuncts : dnf) {
        AnnotatedStd piece = std_;
        piece.body = Formula::And(std::move(conjuncts));
        flat.AddStd(std::move(piece));
      }
    }
    if (ok) {
      out.gamma = std::move(flat);
      out.flattened_to_cq = true;
    }
  }

  OCDX_RETURN_IF_ERROR(out.gamma.Validate(/*allow_functions=*/true));
  return out;
}

Result<SkolemMembership> InSkolemComposition(const Mapping& sigma,
                                             const Mapping& delta,
                                             const Instance& source,
                                             const Instance& target,
                                             Universe* universe,
                                             SkolemMembershipOptions options,
                                             const EngineContext& ctx) {
  bool delta_open_monotone =
      delta.IsAllOpen() && delta.HasMonotoneBodies();
  bool sigma_closed = sigma.IsAllClosed();
  if (!delta_open_monotone && !sigma_closed) {
    return Status::Unimplemented(
        "semantic SkSTD composition is implemented for the Theorem 5 "
        "classes: all-open+monotone Delta or all-closed Sigma");
  }

  // Lemma 4: plain STD rules become Skolemized rules first.
  for (const AnnotatedStd& std_ : sigma.stds()) {
    if (!std_.ExistentialVars().empty()) {
      OCDX_ASSIGN_OR_RETURN(Mapping sk, EnsureSkolemized(sigma));
      return InSkolemComposition(sk, delta, source, target, universe,
                                 options, ctx);
    }
  }

  // Enumerate Sigma interpretations; the minimal intermediate
  // J = rel(Sol_{F'}(S)) suffices in both supported classes (all-closed:
  // RepA is a singleton; all-open+monotone Delta: Claim 8).
  SkolemMembership out;
  out.method = sigma_closed
                   ? "J = Sol_F'(S) (all-closed Sigma)"
                   : "J = Sol_F'(S) (monotone all-open Delta, Claim 8)";

  // Lemma 4: plain STD rules become Skolemized rules first.
  for (const AnnotatedStd& std_ : sigma.stds()) {
    if (!std_.ExistentialVars().empty()) {
      OCDX_ASSIGN_OR_RETURN(Mapping sk, EnsureSkolemized(sigma));
      return InSkolemComposition(sk, delta, source, target, universe,
                                 options, ctx);
    }
  }

  // One plan cache for the whole composition decision (unless the
  // caller attached one): the interpretation loops below re-run Sigma's
  // bodies per phase-1 valuation and Delta's per intermediate J.
  EngineContext call_ctx = ctx;
  call_ctx.EnsureCache();

  // Distinguished constants: everything W, Sigma and Delta can "see".
  std::vector<Value> adom = source.ActiveDomain();
  std::set<Value> fixed_set(adom.begin(), adom.end());
  for (Value v : target.ActiveDomain()) fixed_set.insert(v);
  for (const Mapping* m : {&sigma, &delta}) {
    for (const AnnotatedStd& std_ : m->stds()) {
      for (Value v : ConstantsIn(std_.body)) fixed_set.insert(v);
      for (const HeadAtom& atom : std_.head) {
        for (const Term& t : atom.terms) {
          if (t.IsConst()) fixed_set.insert(t.constant);
        }
      }
    }
  }
  std::vector<Value> fixed(fixed_set.begin(), fixed_set.end());

  // Phase 1: sigma's demanded *body* slots (guard analysis); head slots
  // surface as placeholders during each solve and form phase 2.
  OCDX_ASSIGN_OR_RETURN(SlotSet demanded,
                        DemandedBodySlots(sigma, source, universe, call_ctx));
  std::vector<std::pair<std::string, Tuple>> slots(demanded.begin(),
                                                   demanded.end());
  std::vector<Value> slot_nulls;
  for (size_t i = 0; i < slots.size(); ++i) {
    slot_nulls.push_back(universe->FreshNull(StrCat("cs", i)));
  }

  // Shared deadline/cancellation gauge for both interpretation loops
  // (logic/budget.h), mirroring InSkolemSemantics.
  BudgetGauge gauge(call_ctx.budget, call_ctx.stats);
  ValuationEnumerator phase1(slot_nulls, fixed, universe);
  Valuation v1;
  while (phase1.Next(&v1)) {
    OCDX_RETURN_IF_ERROR(gauge.Tick());
    if (++out.interpretations_checked > options.max_interpretations) {
      out.exhaustive = false;
      return out;
    }
    TableOracle table;
    std::vector<Value> phase1_images;
    for (size_t i = 0; i < slots.size(); ++i) {
      Value img = v1.Apply(slot_nulls[i]);
      table.Set(slots[i].first, slots[i].second, img);
      phase1_images.push_back(img);
    }
    RecordingOracle head_oracle(&table, universe);
    Result<AnnotatedInstance> sol =
        SolveSkolem(sigma, source, &head_oracle, universe, call_ctx);
    if (!sol.ok()) return sol.status();

    // Phase 2: valuate head-slot placeholders that reached tuples.
    std::set<Value> in_tuples;
    for (Value v : sol.value().Nulls()) in_tuples.insert(v);
    std::vector<Value> phase2_nulls;
    for (const auto& [slot, null] : head_oracle.placeholders()) {
      if (in_tuples.count(null)) phase2_nulls.push_back(null);
    }
    std::vector<Value> fixed2 = fixed;
    for (Value v : phase1_images) fixed2.push_back(v);
    ValuationEnumerator phase2(phase2_nulls, fixed2, universe);
    Valuation v2;
    while (phase2.Next(&v2)) {
      OCDX_RETURN_IF_ERROR(gauge.Tick());
      if (++out.interpretations_checked > options.max_interpretations) {
        out.exhaustive = false;
        return out;
      }
      Instance j = v2.ApplyRelPart(sol.value());
      for (const RelationDecl& d : sigma.target().decls()) {
        j.GetOrCreate(d.name, d.arity());
      }
      OCDX_ASSIGN_OR_RETURN(
          SkolemMembership inner,
          InSkolemSemantics(delta, j, target, universe, options, call_ctx));
      if (!inner.exhaustive) out.exhaustive = false;
      if (inner.member) {
        out.member = true;
        return out;
      }
    }
  }
  out.member = false;
  return out;
}

}  // namespace ocdx
