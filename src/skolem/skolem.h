// Skolemized STDs (Section 5 of the paper).
//
// An annotated SkSTD is psi(u1..uk) :- phi(x1..xn) where phi is an FO
// formula over the source schema *and* a set F of function symbols
// (atomic subformulas R(z-bar) or y = f(z-bar)), and each head argument
// u_i is a body variable or a function term f(z-bar). SkSTDs generalize
// STDs (Lemma 4) and are the vehicle for composition (Lemma 5, Thm 5):
// annotated SkSTD mappings with all-open CQ rules, and with all-closed FO
// rules, are closed under composition.
//
// Semantics: given *actual functions* F' (an interpretation of every
// function symbol), Sol_{F'}(S) is built like a canonical solution but
// with function terms evaluated through F'; then
//     [[S]]_{Sigma_alpha} = union over F' of RepA(Sol_{F'}(S)).
//
// ocdx realizes "exists F'" finitely two ways:
//   - term-keyed nulls (the F' ~ v correspondence in Lemma 4's proof):
//     each ground term f(a-bar) becomes a null keyed by the term; exact
//     whenever function symbols occur only in heads;
//   - explicit up-to-isomorphism enumeration of F' over the finitely many
//     relevant argument tuples; exact in general (genericity), used when
//     bodies mention function terms (e.g. composition outputs).

#ifndef OCDX_SKOLEM_SKOLEM_H_
#define OCDX_SKOLEM_SKOLEM_H_

#include <map>
#include <set>
#include <string>

#include "base/instance.h"
#include "logic/engine_context.h"
#include "logic/evaluator.h"
#include "mapping/mapping.h"
#include "semantics/repa.h"
#include "util/status.h"

namespace ocdx {

/// All function symbols (name -> arity) used anywhere in the mapping's
/// bodies and heads.
std::map<std::string, size_t> MappingFunctions(const Mapping& mapping);

/// A set of ground function applications (function name, argument tuple).
using SlotSet = std::set<std::pair<std::string, Tuple>>;

/// Static guard analysis: the ground function applications that can
/// influence the truth of some rule body over `source`. A function term's
/// arguments only matter for bindings that satisfy the positive
/// relational atoms conjoined with it (its guards) — for any other
/// binding the enclosing conjunction is false regardless of the
/// function's value. Argument variables not bound by any guard fall back
/// to the full active domain. Fails with Unimplemented on nested function
/// terms in bodies (head nesting is fine).
Result<SlotSet> DemandedBodySlots(
    const Mapping& mapping, const Instance& source, Universe* universe,
    const EngineContext& ctx = EngineContext());

/// Lemma 4: translates a plain annotated STD mapping into an equivalent
/// annotated SkSTD mapping. Each existential variable z of STD #i becomes
/// the function term f_i_z(x-bar, y-bar) over *all* free variables of the
/// body, preserving annotations and right-hand sides.
Result<Mapping> Skolemize(const Mapping& mapping);

/// Returns the mapping itself if it has no existential head variables,
/// its Skolemization if it is a plain STD mapping, and an error if it
/// mixes existential variables with function terms.
Result<Mapping> EnsureSkolemized(const Mapping& mapping);

/// A concrete interpretation of function symbols, backed by an explicit
/// table. Apply() fails on arguments outside the table (the enumeration
/// driver always populates every relevant slot).
class TableOracle : public FunctionOracle {
 public:
  void Set(const std::string& func, Tuple args, Value result) {
    table_[{func, std::move(args)}] = result;
  }
  Result<Value> Apply(const std::string& func, const Tuple& args) override;

 private:
  std::map<std::pair<std::string, Tuple>, Value> table_;
};

/// Interprets every ground term f(a-bar) as a null keyed by the term,
/// minting on demand (the F' ~ v correspondence). The same term always
/// returns the same null.
class TermNullOracle : public FunctionOracle {
 public:
  explicit TermNullOracle(Universe* universe) : universe_(universe) {}
  Result<Value> Apply(const std::string& func, const Tuple& args) override;

  /// All term-nulls minted so far, keyed by (function, arguments).
  const std::map<std::pair<std::string, Tuple>, Value>& slots() const {
    return slots_;
  }

 private:
  Universe* universe_;
  std::map<std::pair<std::string, Tuple>, Value> slots_;
};

/// Resolves from a table, minting a recorded placeholder null for any
/// slot the table misses. The enumeration drivers use it to discover the
/// head-term slots of an interpretation (phase 2 of the two-phase
/// search).
class RecordingOracle : public FunctionOracle {
 public:
  RecordingOracle(TableOracle* table, Universe* universe)
      : table_(table), universe_(universe) {}

  Result<Value> Apply(const std::string& func, const Tuple& args) override;

  const std::map<std::pair<std::string, Tuple>, Value>& placeholders() const {
    return placeholders_;
  }

 private:
  TableOracle* table_;
  Universe* universe_;
  std::map<std::pair<std::string, Tuple>, Value> placeholders_;
};

/// Computes Sol_{F'}(S) for a Skolemized mapping under the oracle's
/// interpretation (including empty annotated tuples for unfired rules).
Result<AnnotatedInstance> SolveSkolem(
    const Mapping& mapping, const Instance& source, FunctionOracle* oracle,
    Universe* universe, const EngineContext& ctx = EngineContext());

struct SkolemMembership {
  bool member = false;
  /// True iff decided by the exact term-keyed path or a completed
  /// function enumeration.
  bool exhaustive = true;
  std::string method;
  uint64_t interpretations_checked = 0;
};

struct SkolemMembershipOptions {
  /// Budget for explicit F' enumeration.
  uint64_t max_interpretations = 2'000'000;
  RepAOptions repa;
};

/// Is `target` (ground) in [[source]] of the Skolemized mapping, i.e.
/// does some interpretation F' put target in RepA(Sol_{F'}(source))?
Result<SkolemMembership> InSkolemSemantics(
    const Mapping& mapping, const Instance& source, const Instance& target,
    Universe* universe, SkolemMembershipOptions options = {},
    const EngineContext& ctx = EngineContext());

/// Proposition 7: renders the mapping as the second-order sentence
/// "exists f1..fr forall x-bar (phi -> psi) ..." of [FKPT05].
std::string ToSecondOrderSentence(const Mapping& mapping,
                                  const Universe& universe);

}  // namespace ocdx

#endif  // OCDX_SKOLEM_SKOLEM_H_
