// Zero-cost-when-detached phase tracing (ROADMAP item 3, metrics half).
//
// The engine's phase boundaries — parse, chase, plan compile/bind,
// member enumeration and its shard tasks, the NP searches, snapshot
// write/load, whole job lifecycles — are bracketed by RAII ScopedSpan
// objects. A span reads the monotonic clock and records anything ONLY
// when the job's EngineContext has a stats sink or a trace sink
// attached; detached, construction and destruction are two null checks,
// so instrumented code paths cost nothing in production runs (pinned by
// the bench --check gate).
//
// When attached, a span does two independent things:
//
//   - accumulates its duration into the phase's `*_ns` field on
//     EngineStats (logic/engine_context.h), merged across jobs and
//     shards by operator+= like every counter;
//   - appends a TraceEvent to the job's TraceSink, from which
//     RenderChromeTrace emits Chrome trace-event JSON (openable in
//     about://tracing or Perfetto).
//
// Ownership contract (same as EngineStats): one sink per job, never
// shared across threads, no locks anywhere. Shard fan-out gives each
// worker shard its own TraceSink with a distinct `track` and absorbs
// them into the parent sink in shard order after the pool drains, so
// trace structure is deterministic for every worker count.

#ifndef OCDX_OBS_TRACE_H_
#define OCDX_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "logic/engine_context.h"

namespace ocdx {
namespace obs {

/// Monotonic clock, nanoseconds since an arbitrary epoch.
uint64_t NowNs();

/// A phase identity: the span name that appears in traces and reports,
/// tied to the EngineStats field its durations accumulate into. The
/// constants below are the whole taxonomy — instrumentation sites refer
/// to these, never to ad-hoc strings.
struct PhaseDef {
  const char* name;
  uint64_t EngineStats::*ns_field;
};

inline constexpr PhaseDef kPhaseParse{"dx-parse", &EngineStats::parse_ns};
inline constexpr PhaseDef kPhaseChase{"chase", &EngineStats::chase_ns};
inline constexpr PhaseDef kPhasePlanCompile{"plan-compile",
                                            &EngineStats::plan_compile_ns};
inline constexpr PhaseDef kPhasePlanBind{"plan-bind",
                                         &EngineStats::plan_bind_ns};
inline constexpr PhaseDef kPhaseMemberEnum{"member-enum",
                                           &EngineStats::member_enum_ns};
inline constexpr PhaseDef kPhaseEnumShard{"enum-shard",
                                          &EngineStats::enum_shard_ns};
inline constexpr PhaseDef kPhaseHomSearch{"hom-search",
                                          &EngineStats::hom_search_ns};
inline constexpr PhaseDef kPhaseRepASearch{"repa-search",
                                           &EngineStats::repa_search_ns};
inline constexpr PhaseDef kPhaseSnapWrite{"snap-write",
                                          &EngineStats::snap_write_ns};
inline constexpr PhaseDef kPhaseSnapLoad{"snap-load",
                                         &EngineStats::snap_load_ns};
inline constexpr PhaseDef kPhaseJob{"job", &EngineStats::job_ns};
inline constexpr PhaseDef kPhaseFanoutSetup{"fanout-setup",
                                            &EngineStats::fanout_setup_ns};

/// One completed span. `track` separates concurrent timelines inside a
/// job (0 = the job's own thread, s = shard s's worker); `depth` is the
/// nesting level at entry, so structure is recoverable without
/// timestamps.
struct TraceEvent {
  const char* name;    ///< Phase name (points at a PhaseDef literal).
  uint64_t start_ns;   ///< NowNs() at span entry.
  uint64_t dur_ns;     ///< Span duration.
  uint32_t track;      ///< Timeline within the job (0 = job thread).
  uint32_t depth;      ///< Nesting depth at entry on that track.
};

/// Per-job (or per-shard) span buffer. Plain unsynchronized state:
/// exactly one thread appends to a sink at a time. Events are recorded
/// at span *exit* (RAII destruction order), which is deterministic for
/// a deterministic engine run.
class TraceSink {
 public:
  /// Buffer cap: past this the sink counts drops instead of growing
  /// without bound. Never silently truncates — dropped() reports it and
  /// the Chrome render embeds the count.
  static constexpr size_t kMaxEvents = size_t{1} << 17;

  explicit TraceSink(uint32_t track = 0) : track_(track) {}

  /// Span entry: returns the depth this span nests at.
  uint32_t Enter() { return depth_++; }

  /// Span exit: records the completed event (or counts a drop).
  void Exit(const char* name, uint64_t start_ns, uint64_t end_ns,
            uint32_t depth);

  /// Appends another sink's events (a shard's, a batch job's) after its
  /// owning thread is done with it. Caller fixes ordering by absorbing
  /// in shard/job order.
  void Absorb(const TraceSink& other);

  const std::vector<TraceEvent>& events() const { return events_; }
  uint64_t dropped() const { return dropped_; }
  uint32_t track() const { return track_; }

  /// The span tree minus timestamps: one "track/depth name" line per
  /// event in recorded order. Two runs of the same deterministic job
  /// produce identical structure lines (pinned by tests/obs_test.cc).
  std::vector<std::string> StructureLines() const;

 private:
  std::vector<TraceEvent> events_;
  uint32_t track_ = 0;
  uint32_t depth_ = 0;
  uint64_t dropped_ = 0;
};

/// RAII phase span. Reads the clock only if `stats` or `sink` is
/// attached; completely inert otherwise. Not copyable or movable — it
/// brackets one lexical scope on one thread.
class ScopedSpan {
 public:
  /// The common form: attach to whatever the job's context carries.
  ScopedSpan(const EngineContext& ctx, const PhaseDef& phase)
      : ScopedSpan(ctx.stats, ctx.trace, phase) {}

  /// Explicit sinks, for sites without a context in scope (snapshot
  /// file I/O in the CLI).
  ScopedSpan(EngineStats* stats, TraceSink* sink, const PhaseDef& phase);

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  EngineStats* stats_;
  TraceSink* sink_;
  PhaseDef phase_;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

/// One job's contribution to a merged trace file.
struct TraceJob {
  std::string name;       ///< Thread label ("job-3 tests/corpus/x.dx").
  const TraceSink* sink;  ///< The job's events (shards already absorbed).
};

/// Chrome trace-event JSON ("X" complete events plus "M" thread_name
/// metadata) for a set of jobs. Each job gets a stable tid block —
/// job i, track t maps to tid i*kTrackStride + t — so a batch trace
/// opens with one named row per job (plus one per shard that traced).
/// Timestamps are microseconds relative to the earliest event.
std::string RenderChromeTrace(const std::vector<TraceJob>& jobs);

/// Tracks per job in the tid space: supports the full shard range
/// (--shards is capped at 64) plus the job's own track 0.
inline constexpr uint32_t kTrackStride = 65;

}  // namespace obs
}  // namespace ocdx

#endif  // OCDX_OBS_TRACE_H_
