// Process-lifetime stats aggregation for ocdxd (ROADMAP item 3: "a
// metrics endpoint fed by EngineStats").
//
// Jobs never share stats sinks; each ocdxd request runs with its own
// EngineStats, and the server folds the finished sink into this
// registry exactly once, at job completion — the mutex is therefore
// touched only at job boundaries, never inside evaluation, preserving
// the no-locks-on-evaluation-paths contract.

#ifndef OCDX_OBS_STATS_REGISTRY_H_
#define OCDX_OBS_STATS_REGISTRY_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "logic/engine_context.h"
#include "util/status.h"

namespace ocdx {
namespace obs {

class StatsRegistry {
 public:
  StatsRegistry();

  /// Folds one completed request in. `governed` is the request's first
  /// budget/deadline/cancellation trip (OK when it ran to completion);
  /// `failed` marks requests that produced an err response (read/parse/
  /// command errors) — their partial stats still merge.
  void Record(const EngineStats& job_stats, const Status& governed,
              bool failed);

  /// One-line JSON aggregate: requests served, ok/governed/failed
  /// counts, governed counts per cause, plan-cache hit rate, shard
  /// fan-out totals, uptime, and the full merged EngineStats (every
  /// field, via the obs/report.cc manifest).
  std::string RenderJson() const;

  /// The merged stats so far (copied under the lock).
  EngineStats Snapshot() const;

 private:
  mutable std::mutex mu_;
  EngineStats total_;
  uint64_t requests_ = 0;
  uint64_t ok_ = 0;
  uint64_t failed_ = 0;
  uint64_t governed_budget_ = 0;    ///< kResourceExhausted trips.
  uint64_t governed_deadline_ = 0;  ///< kDeadlineExceeded trips.
  uint64_t governed_cancelled_ = 0; ///< kCancelled trips.
  uint64_t governed_other_ = 0;     ///< Any other non-OK governed code.
  uint64_t start_ns_;
};

}  // namespace obs
}  // namespace ocdx

#endif  // OCDX_OBS_STATS_REGISTRY_H_
