#include "obs/stats_registry.h"

#include <cinttypes>
#include <cstdio>

#include "obs/report.h"
#include "obs/trace.h"

namespace ocdx {
namespace obs {

StatsRegistry::StatsRegistry() : start_ns_(NowNs()) {}

void StatsRegistry::Record(const EngineStats& job_stats,
                           const Status& governed, bool failed) {
  std::lock_guard<std::mutex> lock(mu_);
  total_ += job_stats;
  ++requests_;
  if (failed) {
    ++failed_;
  } else if (governed.ok()) {
    ++ok_;
  } else {
    switch (governed.code()) {
      case StatusCode::kResourceExhausted:
        ++governed_budget_;
        break;
      case StatusCode::kDeadlineExceeded:
        ++governed_deadline_;
        break;
      case StatusCode::kCancelled:
        ++governed_cancelled_;
        break;
      default:
        ++governed_other_;
    }
  }
}

EngineStats StatsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string StatsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t governed = governed_budget_ + governed_deadline_ +
                      governed_cancelled_ + governed_other_;
  uint64_t lookups = total_.plan_cache_hits + total_.plan_cache_misses;
  double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(total_.plan_cache_hits) /
                         static_cast<double>(lookups);
  uint64_t uptime_ms = (NowNs() - start_ns_) / 1000000;

  char head[512];
  std::snprintf(
      head, sizeof(head),
      "{\"requests\":%" PRIu64 ",\"ok\":%" PRIu64 ",\"governed\":%" PRIu64
      ",\"failed\":%" PRIu64
      ",\"governed_by_cause\":{\"resource_exhausted\":%" PRIu64
      ",\"deadline_exceeded\":%" PRIu64 ",\"cancelled\":%" PRIu64
      ",\"other\":%" PRIu64 "},\"plan_cache_hit_rate\":%.4f"
      ",\"shard_fanouts\":%" PRIu64 ",\"shard_tasks\":%" PRIu64
      ",\"uptime_ms\":%" PRIu64 ",\"stats\":",
      requests_, ok_, governed, failed_, governed_budget_, governed_deadline_,
      governed_cancelled_, governed_other_, hit_rate, total_.enum_shard_runs,
      total_.enum_shard_tasks, uptime_ms);
  std::string out = head;
  out += RenderStatsJson(total_);
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace ocdx
