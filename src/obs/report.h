// Rendering EngineStats for humans and machines.
//
// The field table here is the third link in the merge-completeness pin
// (see logic/engine_context.h): a static_assert in report.cc fails the
// build when EngineStats grows a field the table does not name, so
// every counter and timer that exists is also visible in --stats
// output, --stats-json files, the bench records and the ocdxd `stats`
// aggregate.

#ifndef OCDX_OBS_REPORT_H_
#define OCDX_OBS_REPORT_H_

#include <string>

#include "logic/engine_context.h"

namespace ocdx {
namespace obs {

/// One EngineStats field: wire/report name, member pointer, and whether
/// the value is a nanosecond timer (rendered with a human ms column in
/// the table; raw u64 everywhere else).
struct StatsField {
  const char* name;
  uint64_t EngineStats::*field;
  bool is_ns;
};

/// The complete manifest, in declaration order. Exactly
/// EngineStats::kU64Fields entries (statically asserted).
const StatsField* StatsFields();

/// Human-readable table, one field per line, every field always printed
/// (stderr material — never mixed into canonical stdout).
std::string RenderStatsTable(const EngineStats& stats);

/// Compact JSON object {"cq_plans":N,...} with every field in manifest
/// order, raw u64 values. Used by --stats-json, the bench records and
/// the ocdxd `stats` aggregate.
std::string RenderStatsJson(const EngineStats& stats);

}  // namespace obs
}  // namespace ocdx

#endif  // OCDX_OBS_REPORT_H_
