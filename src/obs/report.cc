#include "obs/report.h"

#include <cinttypes>
#include <cstdio>

namespace ocdx {
namespace obs {

namespace {

constexpr StatsField kFields[] = {
    {"cq_plans", &EngineStats::cq_plans, false},
    {"generic_evals", &EngineStats::generic_evals, false},
    {"chase_triggers", &EngineStats::chase_triggers, false},
    {"hom_steps", &EngineStats::hom_steps, false},
    {"repa_steps", &EngineStats::repa_steps, false},
    {"plan_compiles", &EngineStats::plan_compiles, false},
    {"plan_cache_hits", &EngineStats::plan_cache_hits, false},
    {"plan_cache_misses", &EngineStats::plan_cache_misses, false},
    {"guard_depth_fallbacks", &EngineStats::guard_depth_fallbacks, false},
    {"chase_budget_trips", &EngineStats::chase_budget_trips, false},
    {"deadline_trips", &EngineStats::deadline_trips, false},
    {"cancelled_jobs", &EngineStats::cancelled_jobs, false},
    {"enum_shard_runs", &EngineStats::enum_shard_runs, false},
    {"enum_shard_tasks", &EngineStats::enum_shard_tasks, false},
    {"enum_shard_stops", &EngineStats::enum_shard_stops, false},
    {"frozen_base_reuses", &EngineStats::frozen_base_reuses, false},
    {"overlay_mints", &EngineStats::overlay_mints, false},
    {"clone_bytes_avoided", &EngineStats::clone_bytes_avoided, false},
    {"clone_bytes_copied", &EngineStats::clone_bytes_copied, false},
    {"shared_plan_hits", &EngineStats::shared_plan_hits, false},
    {"shared_plan_misses", &EngineStats::shared_plan_misses, false},
    {"parse_ns", &EngineStats::parse_ns, true},
    {"chase_ns", &EngineStats::chase_ns, true},
    {"plan_compile_ns", &EngineStats::plan_compile_ns, true},
    {"plan_bind_ns", &EngineStats::plan_bind_ns, true},
    {"member_enum_ns", &EngineStats::member_enum_ns, true},
    {"enum_shard_ns", &EngineStats::enum_shard_ns, true},
    {"hom_search_ns", &EngineStats::hom_search_ns, true},
    {"repa_search_ns", &EngineStats::repa_search_ns, true},
    {"snap_write_ns", &EngineStats::snap_write_ns, true},
    {"snap_load_ns", &EngineStats::snap_load_ns, true},
    {"job_ns", &EngineStats::job_ns, true},
    {"fanout_setup_ns", &EngineStats::fanout_setup_ns, true},
};

// The report table is pinned to the field manifest: adding an
// EngineStats field without naming it here fails the build (see the
// companion static_assert on sizeof in logic/engine_context.h).
static_assert(sizeof(kFields) / sizeof(kFields[0]) == EngineStats::kU64Fields,
              "EngineStats field added without extending the "
              "src/obs/report.cc field table");

}  // namespace

const StatsField* StatsFields() { return kFields; }

std::string RenderStatsTable(const EngineStats& stats) {
  std::string out = "-- engine stats --\n";
  char line[160];
  for (const StatsField& f : kFields) {
    uint64_t value = stats.*(f.field);
    if (f.is_ns) {
      std::snprintf(line, sizeof(line), "%-22s %14" PRIu64 "  (%.3f ms)\n",
                    f.name, value, static_cast<double>(value) / 1e6);
    } else {
      std::snprintf(line, sizeof(line), "%-22s %14" PRIu64 "\n", f.name,
                    value);
    }
    out += line;
  }
  return out;
}

std::string RenderStatsJson(const EngineStats& stats) {
  std::string out = "{";
  char item[96];
  bool first = true;
  for (const StatsField& f : kFields) {
    std::snprintf(item, sizeof(item), "%s\"%s\":%" PRIu64, first ? "" : ",",
                  f.name, stats.*(f.field));
    out += item;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace ocdx
