#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace ocdx {
namespace obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TraceSink::Exit(const char* name, uint64_t start_ns, uint64_t end_ns,
                     uint32_t depth) {
  if (depth_ > 0) --depth_;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(
      TraceEvent{name, start_ns, end_ns - start_ns, track_, depth});
}

void TraceSink::Absorb(const TraceSink& other) {
  for (const TraceEvent& e : other.events_) {
    if (events_.size() >= kMaxEvents) {
      ++dropped_;
      continue;
    }
    events_.push_back(e);
  }
  dropped_ += other.dropped_;
}

std::vector<std::string> TraceSink::StructureLines() const {
  std::vector<std::string> lines;
  lines.reserve(events_.size());
  for (const TraceEvent& e : events_) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%" PRIu32 "/%" PRIu32 " %s", e.track,
                  e.depth, e.name);
    lines.push_back(buf);
  }
  return lines;
}

ScopedSpan::ScopedSpan(EngineStats* stats, TraceSink* sink,
                       const PhaseDef& phase)
    : stats_(stats), sink_(sink), phase_(phase) {
  if (stats_ == nullptr && sink_ == nullptr) return;
  if (sink_ != nullptr) depth_ = sink_->Enter();
  start_ns_ = NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (stats_ == nullptr && sink_ == nullptr) return;
  uint64_t end_ns = NowNs();
  if (stats_ != nullptr) stats_->*(phase_.ns_field) += end_ns - start_ns_;
  if (sink_ != nullptr) sink_->Exit(phase_.name, start_ns_, end_ns, depth_);
}

namespace {

// Escapes a string for embedding in a JSON string literal. Job names are
// file paths, so backslashes and quotes are realistic, not theoretical.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

}  // namespace

std::string RenderChromeTrace(const std::vector<TraceJob>& jobs) {
  // Timestamps are rebased to the earliest span so the trace opens at
  // t=0 regardless of the monotonic clock's epoch.
  uint64_t base_ns = UINT64_MAX;
  for (const TraceJob& job : jobs) {
    if (job.sink == nullptr) continue;
    for (const TraceEvent& e : job.sink->events()) {
      base_ns = std::min(base_ns, e.start_ns);
    }
  }
  if (base_ns == UINT64_MAX) base_ns = 0;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  uint64_t dropped = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const TraceJob& job = jobs[i];
    if (job.sink == nullptr) continue;
    dropped += job.sink->dropped();
    uint64_t tid_base = static_cast<uint64_t>(i) * kTrackStride;
    std::string name = JsonEscape(job.name);

    // One thread_name metadata row per distinct track this job used.
    std::map<uint32_t, bool> tracks;
    tracks[0] = true;
    for (const TraceEvent& e : job.sink->events()) tracks[e.track] = true;
    for (const auto& [track, unused] : tracks) {
      if (!first) out += ",";
      first = false;
      if (track == 0) {
        AppendF(&out,
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                "\"tid\":%" PRIu64 ",\"args\":{\"name\":\"%s\"}}",
                tid_base, name.c_str());
      } else {
        AppendF(&out,
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                "\"tid\":%" PRIu64 ",\"args\":{\"name\":\"%s [shard %" PRIu32
                "]\"}}",
                tid_base + track, name.c_str(), track);
      }
    }

    for (const TraceEvent& e : job.sink->events()) {
      if (!first) out += ",";
      first = false;
      AppendF(&out,
              "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu64
              ",\"ts\":%.3f,\"dur\":%.3f}",
              e.name, tid_base + e.track,
              static_cast<double>(e.start_ns - base_ns) / 1000.0,
              static_cast<double>(e.dur_ns) / 1000.0);
    }
  }
  AppendF(&out, "],\"otherData\":{\"dropped_events\":\"%" PRIu64 "\"}}\n",
          dropped);
  return out;
}

}  // namespace obs
}  // namespace ocdx
