// ocdxd — a minimal line-protocol server over `.dx` scenario files.
//
//   ocdxd serve [--engine=indexed|naive|generic]
//               [--chase-max-triggers=N] [--max-members=N]
//               [--deadline-ms=N] [--shards=N]
//               [--preload=SNAP.snap ...]
//
// --preload (repeatable) loads binary snapshots (snap/snapshot.h) at
// startup: a request whose <file-path> names either a preloaded snapshot
// file or the `.dx` path recorded inside one is served warm from the
// snapshot's pre-chased universe — no re-parse, no re-chase — with a
// response byte-identical to the cold path. Unmatched paths fall through
// to the usual fresh-parse job. A snapshot that fails to load aborts
// startup with exit 1 (a server silently missing its warm set would be a
// latency regression, not a convenience).
//
// Protocol (stdin/stdout, one request per line — run it under socat or
// (x)inetd for network service; keeping the transport external keeps the
// binary dependency-free):
//
//   request:   <command> <file-path> [key=value ...]
//              where <command> is any ocdx driver command
//              (chase | certain | classify | membership | compose | all),
//              or the single token "stats": respond with the process-
//              lifetime metrics aggregate (obs/stats_registry.h) as one
//              line of JSON — requests served / ok / governed-per-cause /
//              failed counts, plan-cache hit rate, shard fan-out totals,
//              uptime, and the merged EngineStats of every command
//              request served so far ("stats" requests themselves are
//              not counted)
//              and the optional trailing fields tighten the request's
//              resource budget: deadline-ms, chase-max-triggers,
//              max-members, hom-max-steps, repa-max-steps — or set its
//              intra-job fan-out width: shards=N (1..64; responses are
//              byte-identical for every width). An unknown field fails
//              the request (err line), never the server.
//   response:  "ok <nbytes>\n" followed by exactly <nbytes> bytes of
//              canonical command output ("governed <nbytes>\n" instead of
//              "ok" when the run completed but tripped a budget or
//              deadline — the trip renders inline in the payload), or
//              "err <message>\n"
//   "quit" (or EOF) ends the session.
//
// Shutdown: SIGTERM (and SIGINT) drain gracefully — the in-flight
// request observes the cancellation flag through its budget and returns
// a governed response, then the server exits 0 without reading further
// requests. The handler is installed without SA_RESTART so a blocking
// read wakes up too.
//
// Every request executes as an isolated job — fresh parse, fresh
// Universe, explicit EngineContext — through the same path as one batch
// job (exec/batch_runner.h's RunDxFile), so responses are byte-identical
// to `ocdx <command> <file>` output and the server stays reentrant by
// construction.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exec/batch_runner.h"
#include "logic/budget.h"
#include "logic/engine_context.h"
#include "obs/stats_registry.h"
#include "plan/plan_cache.h"
#include "plan/shared_plan_table.h"
#include "snap/snapshot.h"
#include "text/dx_driver.h"
#include "util/fault.h"

namespace {

constexpr char kUsage[] =
    "usage: ocdxd serve [--engine=indexed|naive|generic]\n"
    "                   [--chase-max-triggers=N] [--max-members=N]\n"
    "                   [--deadline-ms=N] [--shards=N]\n"
    "                   [--preload=SNAP.snap ...]\n";

// Two shutdown flags: the sig_atomic_t is the only thing a handler may
// portably touch and gates the accept loop; the atomic<bool> is what the
// engine polls (Budget::cancel). Storing a lock-free atomic from a
// handler is the accepted practice even though the standard only blesses
// volatile sig_atomic_t.
volatile std::sig_atomic_t g_stop = 0;
std::atomic<bool> g_cancel{false};

void OnTerm(int) {
  g_stop = 1;
  g_cancel.store(true, std::memory_order_relaxed);
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

// Maps a wire budget field ("deadline-ms") to its Budget key
// ("deadline_ms"). Returns false on an unknown field.
bool SetWireBudgetField(const std::string& name, uint64_t value,
                        ocdx::Budget* budget) {
  std::string key = name;
  for (char& c : key) {
    if (c == '-') c = '_';
  }
  return ocdx::SetBudgetField(budget, key, value);
}

// Intra-job fan-out width (EngineContext::shards): a knob on the
// context, not a Budget cap, so it is parsed apart from the budget
// fields. Accepted range matches the ocdx --shards flag.
bool ParseShards(const std::string& text, size_t* out) {
  uint64_t value = 0;
  if (!ParseU64(text, &value) || value < 1 || value > 64) return false;
  *out = static_cast<size_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ocdx;

  fault::InstallFromEnv();

  std::string engine = "indexed";
  std::string chase_max_triggers;
  std::string max_members;
  std::string deadline_ms;
  std::string shards;
  std::string preload;
  std::vector<std::string> preload_paths;
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto flag = [&arg](std::string_view name, std::string* out) {
      if (arg.size() < name.size() + 3 || arg.substr(0, 2) != "--" ||
          arg.substr(2, name.size()) != name || arg[name.size() + 2] != '=') {
        return false;
      }
      *out = std::string(arg.substr(name.size() + 3));
      return true;
    };
    if (arg == "serve") {
      serve = true;
    } else if (flag("preload", &preload)) {
      preload_paths.push_back(preload);  // repeatable
    } else if (flag("engine", &engine) ||
               flag("chase-max-triggers", &chase_max_triggers) ||
               flag("max-members", &max_members) ||
               flag("deadline-ms", &deadline_ms) ||
               flag("shards", &shards)) {
      // handled
    } else {
      std::fprintf(stderr, "ocdxd: unknown argument '%s'\n%s",
                   std::string(arg).c_str(), kUsage);
      return 2;
    }
  }
  if (!serve) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  JoinEngineMode mode;
  if (engine == "indexed") {
    mode = JoinEngineMode::kIndexed;
  } else if (engine == "naive") {
    mode = JoinEngineMode::kNaive;
  } else if (engine == "generic") {
    mode = JoinEngineMode::kGeneric;
  } else {
    std::fprintf(stderr, "ocdxd: unknown engine '%s'\n%s", engine.c_str(),
                 kUsage);
    return 2;
  }

  DxDriverOptions options;
  options.engine = EngineContext::ForMode(mode);
  options.engine.budget.cancel = &g_cancel;

  struct ServeFlag {
    const char* name;
    const std::string* value;
  };
  const ServeFlag serve_flags[] = {
      {"chase-max-triggers", &chase_max_triggers},
      {"max-members", &max_members},
      {"deadline-ms", &deadline_ms},
  };
  for (const ServeFlag& sf : serve_flags) {
    if (sf.value->empty()) continue;
    uint64_t value = 0;
    if (!ParseU64(*sf.value, &value) ||
        !SetWireBudgetField(sf.name, value, &options.engine.budget)) {
      std::fprintf(stderr, "ocdxd: bad --%s value '%s'\n%s", sf.name,
                   sf.value->c_str(), kUsage);
      return 2;
    }
  }
  if (!shards.empty() && !ParseShards(shards, &options.engine.shards)) {
    std::fprintf(stderr, "ocdxd: bad --shards value '%s' (want 1..64)\n%s",
                 shards.c_str(), kUsage);
    return 2;
  }

  // Warm set: each entry keeps the snapshot's own file path alongside the
  // bundle (whose source_path is the `.dx` path recorded at write time);
  // a request may address the bundle by either name. The bundle's
  // universe is frozen (snap/snapshot.h), and each bundle owns one
  // SharedPlanTable so plans compile once per *server lifetime*, not per
  // request — ROADMAP item 3's serving contract. The table is omitted
  // when OCDX_PLAN_CACHE=off, preserving the compile-per-call escape
  // hatch.
  struct PreloadedEntry {
    std::string snap_path;
    snap::SnapshotBundle bundle;
    std::unique_ptr<plan::SharedPlanTable> plans;
  };
  std::vector<PreloadedEntry> preloaded;
  preloaded.reserve(preload_paths.size());
  for (const std::string& snap_path : preload_paths) {
    Result<snap::SnapshotBundle> bundle = snap::LoadSnapshotFile(snap_path);
    if (!bundle.ok()) {
      std::fprintf(stderr, "ocdxd: --preload=%s: %s\n", snap_path.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "ocdxd: preloaded '%s' (%zu prechased pairs)\n",
                 snap_path.c_str(), bundle.value().prechased.size());
    PreloadedEntry entry;
    entry.snap_path = snap_path;
    entry.bundle = std::move(bundle.value());
    if (plan::PlanCache::EnabledByEnv()) {
      entry.plans = std::make_unique<plan::SharedPlanTable>();
    }
    preloaded.push_back(std::move(entry));
  }

  // Graceful drain on SIGTERM/SIGINT: no SA_RESTART, so a read blocked in
  // getline returns with EINTR and the loop condition sees g_stop.
  struct sigaction sa = {};
  sa.sa_handler = OnTerm;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  // Process-lifetime metrics, folded in at request completion only (the
  // registry's mutex is never touched inside evaluation).
  obs::StatsRegistry registry;

  std::string line;
  while (!g_stop && std::getline(std::cin, line)) {
    if (g_stop) break;
    if (line == "quit") break;
    if (line.empty()) continue;
    if (line == "stats") {
      std::string payload = registry.RenderJson() + "\n";
      std::printf("ok %zu\n", payload.size());
      std::fwrite(payload.data(), 1, payload.size(), stdout);
      std::fflush(stdout);
      continue;
    }

    // Tokenize: <command> <file> [key=value ...].
    std::vector<std::string> tokens;
    size_t pos = 0;
    while (pos < line.size()) {
      size_t space = line.find(' ', pos);
      if (space == std::string::npos) space = line.size();
      if (space > pos) tokens.push_back(line.substr(pos, space - pos));
      pos = space + 1;
    }
    if (tokens.size() < 2) {
      std::fputs("err expected '<command> <file> [key=value ...]'\n",
                 stdout);
      std::fflush(stdout);
      continue;
    }
    const std::string& command = tokens[0];
    const std::string& path = tokens[1];

    // Per-request budget: starts from the serve-level defaults, tightened
    // by the request's trailing fields; the scenario's own budget block
    // can tighten further inside RunDxCommand.
    DxDriverOptions request = options;
    bool bad_field = false;
    for (size_t i = 2; i < tokens.size(); ++i) {
      size_t eq = tokens[i].find('=');
      if (eq != std::string::npos && eq != 0 &&
          tokens[i].substr(0, eq) == "shards") {
        if (!ParseShards(tokens[i].substr(eq + 1), &request.engine.shards)) {
          std::printf("err bad shards value '%s' (want 1..64)\n",
                      tokens[i].c_str());
          std::fflush(stdout);
          bad_field = true;
          break;
        }
        continue;
      }
      uint64_t value = 0;
      Budget tightener;
      if (eq == std::string::npos || eq == 0 ||
          !ParseU64(tokens[i].substr(eq + 1), &value) ||
          !SetWireBudgetField(tokens[i].substr(0, eq), value, &tightener)) {
        std::printf("err unknown budget field '%s'\n", tokens[i].c_str());
        std::fflush(stdout);
        bad_field = true;
        break;
      }
      request.engine.budget.Tighten(tightener);
    }
    if (bad_field) continue;

    // Warm path: a preloaded snapshot addressed by its own file name or
    // by the `.dx` path it was built from serves the request without
    // touching the filesystem.
    const PreloadedEntry* warm = nullptr;
    for (const PreloadedEntry& entry : preloaded) {
      if (path == entry.snap_path || path == entry.bundle.source_path) {
        warm = &entry;
        break;
      }
    }

    // Per-request stats sink (one per job, like its Universe), folded
    // into the registry when the response is decided.
    EngineStats request_stats;
    request.engine.stats = &request_stats;

    Status governed;
    Result<std::string> out = [&]() -> Result<std::string> {
      if (warm != nullptr) {
        // The bundle's server-lifetime plan table rides the request
        // context; each request still runs over its own private overlay
        // of the frozen bundle universe (RunSnapshotCommand). Cold
        // requests get no table — a fresh parse mints fresh formula
        // identities, so cross-request sharing could never hit.
        request.engine.shared_plans =
            warm->plans != nullptr ? warm->plans.get() : nullptr;
        return snap::RunSnapshotCommand(warm->bundle, command, request,
                                        &governed);
      }
      Result<std::string> source = ReadDxFile(path);
      if (!source.ok()) return source.status();
      return RunDxFile(path, source.value(), command, request, &governed);
    }();
    registry.Record(request_stats, governed, /*failed=*/!out.ok());
    if (!out.ok()) {
      // One-line error: newlines in the message would break the framing.
      std::string msg = out.status().ToString();
      for (char& c : msg) {
        if (c == '\n') c = ' ';
      }
      std::printf("err %s\n", msg.c_str());
    } else {
      std::printf("%s %zu\n", governed.ok() ? "ok" : "governed",
                  out.value().size());
      std::fwrite(out.value().data(), 1, out.value().size(), stdout);
    }
    std::fflush(stdout);
  }
  return 0;
}
