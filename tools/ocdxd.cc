// ocdxd — a minimal line-protocol server over `.dx` scenario files.
//
//   ocdxd serve [--engine=indexed|naive|generic]
//
// Protocol (stdin/stdout, one request per line — run it under socat or
// (x)inetd for network service; keeping the transport external keeps the
// binary dependency-free):
//
//   request:   <command> <file-path>
//              where <command> is any ocdx driver command
//              (chase | certain | classify | membership | compose | all)
//   response:  "ok <nbytes>\n" followed by exactly <nbytes> bytes of
//              canonical command output, or
//              "err <message>\n"
//   "quit" (or EOF) ends the session.
//
// Every request executes as an isolated job — fresh parse, fresh
// Universe, explicit EngineContext — through the same path as one batch
// job (exec/batch_runner.h's RunDxFile), so responses are byte-identical
// to `ocdx <command> <file>` output and the server stays reentrant by
// construction.

#include <cstdio>
#include <iostream>
#include <string>
#include <string_view>

#include "exec/batch_runner.h"
#include "logic/engine_context.h"
#include "text/dx_driver.h"

namespace {

constexpr char kUsage[] =
    "usage: ocdxd serve [--engine=indexed|naive|generic]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace ocdx;

  std::string engine = "indexed";
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "serve") {
      serve = true;
    } else if (arg.substr(0, 9) == "--engine=") {
      engine = std::string(arg.substr(9));
    } else {
      std::fprintf(stderr, "ocdxd: unknown argument '%s'\n%s",
                   std::string(arg).c_str(), kUsage);
      return 2;
    }
  }
  if (!serve) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  JoinEngineMode mode;
  if (engine == "indexed") {
    mode = JoinEngineMode::kIndexed;
  } else if (engine == "naive") {
    mode = JoinEngineMode::kNaive;
  } else if (engine == "generic") {
    mode = JoinEngineMode::kGeneric;
  } else {
    std::fprintf(stderr, "ocdxd: unknown engine '%s'\n%s", engine.c_str(),
                 kUsage);
    return 2;
  }

  DxDriverOptions options;
  options.engine = EngineContext::ForMode(mode);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit") break;
    if (line.empty()) continue;

    size_t space = line.find(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      std::fputs("err expected '<command> <file>'\n", stdout);
      std::fflush(stdout);
      continue;
    }
    std::string command = line.substr(0, space);
    std::string path = line.substr(space + 1);

    Result<std::string> source = ReadDxFile(path);
    if (!source.ok()) {
      std::printf("err %s\n", source.status().ToString().c_str());
      std::fflush(stdout);
      continue;
    }
    Result<std::string> out =
        RunDxFile(path, source.value(), command, options);
    if (!out.ok()) {
      // One-line error: newlines in the message would break the framing.
      std::string msg = out.status().ToString();
      for (char& c : msg) {
        if (c == '\n') c = ' ';
      }
      std::printf("err %s\n", msg.c_str());
    } else {
      std::printf("ok %zu\n", out.value().size());
      std::fwrite(out.value().data(), 1, out.value().size(), stdout);
    }
    std::fflush(stdout);
  }
  return 0;
}
