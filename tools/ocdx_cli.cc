// ocdx — command-line driver for `.dx` data-exchange scenario files.
//
//   ocdx chase FILE.dx [flags]       chase every (mapping, source) pair
//   ocdx certain FILE.dx [flags]     certain answers for every query
//   ocdx classify FILE.dx            annotation / query classification
//   ocdx membership FILE.dx [flags]  solution-space / RepA membership
//   ocdx compose FILE.dx [flags]     composition membership + Lemma 5
//   ocdx all FILE.dx [flags]         every applicable command (golden form)
//   ocdx print FILE.dx               parse and pretty-print canonically
//   ocdx batch FILE.dx... [flags]    run --command over many files on a
//                                    worker pool (-j N); stdout is byte-
//                                    identical for every -j, timing goes
//                                    to stderr
//   ocdx snapshot write FILE.dx OUT.snap
//                                    parse + chase once, persist the
//                                    result as a relocatable binary
//                                    snapshot (snap/format.h)
//   ocdx snapshot read SNAP.snap     validate a snapshot and print its
//                                    summary (scenario, universe totals,
//                                    stored pairs)
//   ocdx snapshot run SNAP.snap [--command=CMD]
//                                    warm-start: serve a driver command
//                                    from the snapshot, byte-identical to
//                                    the cold `ocdx CMD FILE.dx` output
//
// Flags:
//   --engine=indexed|naive|generic   join-engine mode (default: indexed)
//   --mapping=NAME                   chase/certain/membership: one mapping
//   --sigma=NAME --delta=NAME        compose: mapping selection
//   --source=NAME --target=NAME      compose: instance selection
//   --chase-max-triggers=N           resource cap: chase trigger firings
//   --max-members=N                  resource cap: enumerated members
//   --deadline-ms=N                  wall-clock deadline per command
//   --shards=N                       intra-job fan-out width for the
//                                    member-enumeration loops (default 1;
//                                    output is byte-identical for every N)
//   --stats                          render the run's EngineStats table
//                                    (counters + phase timings) to stderr
//   --stats-json=FILE                write the run's EngineStats as JSON
//   --trace-out=FILE                 write Chrome trace-event JSON (open
//                                    in about://tracing or Perfetto);
//                                    batch merges per-job sinks under
//                                    stable job-indexed tids
//
// Observability contract: canonical output on stdout stays byte-
// identical whether or not --stats/--stats-json/--trace-out are set —
// the table goes to stderr, traces and JSON to their named files (see
// docs/observability.md).
//   -j N / --jobs=N                  batch: worker threads (default 1)
//   --command=CMD                    batch: driver command (default all)
//   --no-split                       batch: one job per file (no
//                                    within-scenario fan-out)
//
// Exit codes: 0 = success; 1 = error (unreadable/unparsable input, hard
// failure); 2 = usage; 3 = the run completed but at least one evaluation
// tripped a resource budget/deadline (the trip renders as a positioned
// `error ...` line in the output). Scenario `budget { ... }` blocks
// tighten the flag-supplied caps, never relax them.
//
// Output is canonical and diff-stable (see text/dx_driver.h); the golden
// corpus under tests/corpus pins `ocdx all` for every scenario, and the
// CI batch diff pins `ocdx batch -j 8` == `-j 1`.
//
// The engine mode is carried in an explicit EngineContext on the driver
// options — the CLI never writes the deprecated process-global mode, so
// no global state survives any exit path.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "exec/batch_runner.h"
#include "logic/budget.h"
#include "logic/engine_context.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "plan/plan_cache.h"
#include "plan/shared_plan_table.h"
#include "snap/snapshot.h"
#include "text/dx_driver.h"
#include "text/dx_parser.h"
#include "text/dx_printer.h"
#include "util/fault.h"

namespace {

constexpr char kUsage[] =
    "usage: ocdx <chase|certain|classify|membership|compose|all|print> "
    "FILE.dx\n"
    "            [--engine=indexed|naive|generic] [--mapping=NAME]\n"
    "            [--sigma=NAME] [--delta=NAME] [--source=NAME] "
    "[--target=NAME]\n"
    "            [--chase-max-triggers=N] [--max-members=N] "
    "[--deadline-ms=N]\n"
    "            [--shards=N] [--stats] [--stats-json=FILE] "
    "[--trace-out=FILE]\n"
    "       ocdx batch FILE.dx... [-j N] [--command=CMD] "
    "[--engine=MODE] [--no-split]\n"
    "                  [--stats] [--stats-json=FILE] [--trace-out=FILE]\n"
    "       ocdx snapshot write FILE.dx OUT.snap [--engine=MODE] "
    "[budget flags]\n"
    "       ocdx snapshot read SNAP.snap\n"
    "       ocdx snapshot run SNAP.snap [--command=CMD] [--engine=MODE]\n"
    "                                   [--shards=N] [budget flags]\n"
    "exit codes: 0 ok, 1 error, 2 usage, 3 resource budget tripped\n";

bool FlagValue(std::string_view arg, std::string_view name,
               std::string* out) {
  if (arg.substr(0, 2) != "--") return false;
  std::string_view rest = arg.substr(2);
  // "--name=value", value possibly empty (reported as invalid downstream).
  if (rest.size() < name.size() + 1 ||
      rest.substr(0, name.size()) != name || rest[name.size()] != '=') {
    return false;
  }
  *out = std::string(rest.substr(name.size() + 1));
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t n = std::fwrite(content.data(), 1, content.size(), f);
  int rc = std::fclose(f);
  return n == content.size() && rc == 0;
}

// End-of-run observability surfaces: --stats table to stderr, --stats-
// json and --trace-out to their files. Canonical stdout is never
// touched. Returns 0, or 1 on a file-write failure.
int EmitObservability(bool stats_table, const std::string& stats_json,
                      const std::string& trace_out,
                      const ocdx::EngineStats& stats,
                      const std::vector<ocdx::obs::TraceJob>& trace_jobs) {
  if (stats_table) {
    std::fputs(ocdx::obs::RenderStatsTable(stats).c_str(), stderr);
  }
  if (!stats_json.empty() &&
      !WriteTextFile(stats_json, ocdx::obs::RenderStatsJson(stats) + "\n")) {
    std::fprintf(stderr, "ocdx: cannot write '%s'\n", stats_json.c_str());
    return 1;
  }
  if (!trace_out.empty() &&
      !WriteTextFile(trace_out, ocdx::obs::RenderChromeTrace(trace_jobs))) {
    std::fprintf(stderr, "ocdx: cannot write '%s'\n", trace_out.c_str());
    return 1;
  }
  return 0;
}

bool ParseEngine(const std::string& engine, ocdx::JoinEngineMode* mode) {
  if (engine == "indexed") {
    *mode = ocdx::JoinEngineMode::kIndexed;
  } else if (engine == "naive") {
    *mode = ocdx::JoinEngineMode::kNaive;
  } else if (engine == "generic") {
    *mode = ocdx::JoinEngineMode::kGeneric;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ocdx;

  // Deterministic fault injection (OCDX_FAULT=<site>:<n>), armed before
  // anything evaluates; a no-op unless the variable is set.
  fault::InstallFromEnv();

  std::vector<std::string> positional;
  std::string engine = "indexed";
  std::string jobs_flag;
  std::string command_flag;
  std::string chase_max_triggers_flag;
  std::string max_members_flag;
  std::string deadline_ms_flag;
  std::string shards_flag;
  std::string stats_json_flag;
  std::string trace_out_flag;
  bool stats_flag = false;
  bool no_split = false;
  DxDriverOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "-j") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ocdx: -j needs a worker count\n%s", kUsage);
        return 2;
      }
      jobs_flag = argv[++i];
      continue;
    }
    if (arg.size() > 2 && arg.substr(0, 2) == "-j") {  // make-style "-j8"
      jobs_flag = std::string(arg.substr(2));
      continue;
    }
    if (arg == "--no-split") {
      no_split = true;
      continue;
    }
    if (arg == "--stats") {
      stats_flag = true;
      continue;
    }
    if (FlagValue(arg, "engine", &engine) ||
        FlagValue(arg, "jobs", &jobs_flag) ||
        FlagValue(arg, "command", &command_flag) ||
        FlagValue(arg, "chase-max-triggers", &chase_max_triggers_flag) ||
        FlagValue(arg, "max-members", &max_members_flag) ||
        FlagValue(arg, "deadline-ms", &deadline_ms_flag) ||
        FlagValue(arg, "shards", &shards_flag) ||
        FlagValue(arg, "stats-json", &stats_json_flag) ||
        FlagValue(arg, "trace-out", &trace_out_flag) ||
        FlagValue(arg, "mapping", &options.mapping) ||
        FlagValue(arg, "sigma", &options.sigma) ||
        FlagValue(arg, "delta", &options.delta) ||
        FlagValue(arg, "source", &options.source) ||
        FlagValue(arg, "target", &options.target)) {
      continue;
    }
    if (arg.substr(0, 2) == "--") {
      std::fprintf(stderr, "ocdx: unknown flag '%s'\n%s",
                   std::string(arg).c_str(), kUsage);
      return 2;
    }
    positional.emplace_back(arg);
  }
  if (positional.size() < 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string& command = positional[0];

  JoinEngineMode mode;
  if (!ParseEngine(engine, &mode)) {
    std::fprintf(stderr, "ocdx: unknown engine '%s'\n%s", engine.c_str(),
                 kUsage);
    return 2;
  }
  options.engine = EngineContext::ForMode(mode);

  struct BudgetFlag {
    const char* name;
    const std::string* value;
    uint64_t Budget::* field;
  };
  const BudgetFlag budget_flags[] = {
      {"--chase-max-triggers", &chase_max_triggers_flag,
       &Budget::chase_max_triggers},
      {"--max-members", &max_members_flag, &Budget::max_members},
      {"--deadline-ms", &deadline_ms_flag, &Budget::deadline_ms},
  };
  for (const BudgetFlag& bf : budget_flags) {
    if (bf.value->empty()) continue;
    uint64_t value = 0;
    if (!ParseU64(*bf.value, &value)) {
      std::fprintf(stderr, "ocdx: bad %s value '%s'\n%s", bf.name,
                   bf.value->c_str(), kUsage);
      return 2;
    }
    options.engine.budget.*(bf.field) = value;
  }

  if (!shards_flag.empty()) {
    uint64_t shards = 0;
    if (!ParseU64(shards_flag, &shards) || shards < 1 || shards > 64) {
      std::fprintf(stderr, "ocdx: bad --shards value '%s' (want 1..64)\n%s",
                   shards_flag.c_str(), kUsage);
      return 2;
    }
    options.engine.shards = static_cast<size_t>(shards);
  }

  // Observability attachment. Detached (the default) the ScopedSpan
  // instrumentation is two null checks per phase — nothing is timed,
  // nothing allocated. Batch ignores these pointers and gives every job
  // its own sinks; it aggregates into its report instead.
  EngineStats run_stats;
  obs::TraceSink trace_sink;
  if (stats_flag || !stats_json_flag.empty()) {
    options.engine.stats = &run_stats;
  }
  if (!trace_out_flag.empty()) options.engine.trace = &trace_sink;

  if (command == "batch") {
    BatchOptions batch;
    batch.engine = options.engine;
    batch.driver = options;
    batch.command = command_flag.empty() ? "all" : command_flag;
    batch.split_scenarios = !no_split;
    if (!jobs_flag.empty()) {
      char* end = nullptr;
      long n = std::strtol(jobs_flag.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 1 || n > 1024) {
        std::fprintf(stderr, "ocdx: bad -j value '%s'\n", jobs_flag.c_str());
        return 2;
      }
      batch.workers = static_cast<size_t>(n);
    }
    batch.collect_traces = !trace_out_flag.empty();
    std::vector<std::string> files(positional.begin() + 1, positional.end());
    Result<BatchReport> report = RunDxBatch(files, batch);
    if (!report.ok()) {
      std::fprintf(stderr, "ocdx: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::fputs(RenderBatchOutput(report.value()).c_str(), stdout);
    std::fputs(RenderBatchSummary(report.value(), batch).c_str(), stderr);
    std::vector<obs::TraceJob> trace_jobs;
    trace_jobs.reserve(report.value().traces.size());
    for (const BatchJobTrace& t : report.value().traces) {
      trace_jobs.push_back(obs::TraceJob{t.label, t.sink.get()});
    }
    int obs_rc = EmitObservability(stats_flag, stats_json_flag,
                                   trace_out_flag, report.value().stats,
                                   trace_jobs);
    if (obs_rc != 0) return obs_rc;
    // Hard failures dominate the exit code; a clean-but-governed batch
    // reports 3 so scripts can tell "completed under budget trips" from
    // both success and failure.
    if (!report.value().ok()) return 1;
    return report.value().governed_jobs > 0 ? 3 : 0;
  }

  if (command == "snapshot") {
    const std::string& sub = positional[1];
    if (sub == "write") {
      if (positional.size() != 4) {
        std::fprintf(stderr, "ocdx: snapshot write needs FILE.dx OUT.snap\n%s",
                     kUsage);
        return 2;
      }
      const std::string& dx_path = positional[2];
      const std::string& out_path = positional[3];
      Result<std::string> src = ReadDxFile(dx_path);
      if (!src.ok()) {
        std::fprintf(stderr, "ocdx: %s\n", src.status().ToString().c_str());
        return 1;
      }
      size_t prechased = 0;
      {
        // One span over build + serialize + write: the phase a warm
        // start amortizes away.
        obs::ScopedSpan span(options.engine.stats, options.engine.trace,
                             obs::kPhaseSnapWrite);
        Result<snap::SnapshotBundle> bundle = snap::BuildSnapshotBundle(
            dx_path, src.value(), options.engine);
        if (!bundle.ok()) {
          std::fprintf(stderr, "ocdx: %s: %s\n", dx_path.c_str(),
                       bundle.status().ToString().c_str());
          return 1;
        }
        Status written = snap::WriteSnapshotFile(bundle.value(), out_path);
        if (!written.ok()) {
          std::fprintf(stderr, "ocdx: %s\n", written.ToString().c_str());
          return 1;
        }
        prechased = bundle.value().prechased.size();
      }
      std::fprintf(stderr, "ocdx: wrote '%s' (%zu prechased pairs)\n",
                   out_path.c_str(), prechased);
      return EmitObservability(stats_flag, stats_json_flag, trace_out_flag,
                               run_stats,
                               {obs::TraceJob{"snapshot-write " + dx_path,
                                              &trace_sink}});
    }
    if (sub == "read" || sub == "run") {
      if (positional.size() != 3) {
        std::fprintf(stderr, "ocdx: snapshot %s needs one SNAP file\n%s",
                     sub.c_str(), kUsage);
        return 2;
      }
      std::optional<Result<snap::SnapshotBundle>> bundle;
      {
        obs::ScopedSpan span(options.engine.stats, options.engine.trace,
                             obs::kPhaseSnapLoad);
        bundle.emplace(snap::LoadSnapshotFile(positional[2]));
      }
      if (!bundle->ok()) {
        std::fprintf(stderr, "ocdx: %s\n",
                     bundle->status().ToString().c_str());
        return 1;
      }
      int exit_code = 0;
      if (sub == "read") {
        std::fputs(snap::DescribeSnapshot(bundle->value()).c_str(), stdout);
      } else {
        std::string run_command = command_flag.empty() ? "all" : command_flag;
        Status governed;
        // One plan table per loaded bundle, exactly like ocdxd --preload
        // serving — a single CLI run compiles each query once even when
        // the command fans out across shards.
        plan::SharedPlanTable snapshot_plans;
        DxDriverOptions run_options = options;
        if (plan::PlanCache::EnabledByEnv() &&
            !run_options.engine.plan_cache_opt_out) {
          run_options.engine.shared_plans = &snapshot_plans;
        }
        std::optional<Result<std::string>> out;
        {
          obs::ScopedSpan span(options.engine.stats, options.engine.trace,
                               obs::kPhaseJob);
          out.emplace(snap::RunSnapshotCommand(bundle->value(), run_command,
                                               run_options, &governed));
        }
        if (!out->ok()) {
          std::fprintf(stderr, "ocdx: %s: %s\n", positional[2].c_str(),
                       out->status().ToString().c_str());
          return 1;
        }
        std::fputs(out->value().c_str(), stdout);
        exit_code = governed.ok() ? 0 : 3;
      }
      int obs_rc = EmitObservability(
          stats_flag, stats_json_flag, trace_out_flag, run_stats,
          {obs::TraceJob{"snapshot-" + sub + " " + positional[2],
                         &trace_sink}});
      return obs_rc != 0 ? obs_rc : exit_code;
    }
    std::fprintf(stderr, "ocdx: unknown snapshot subcommand '%s'\n%s",
                 sub.c_str(), kUsage);
    return 2;
  }

  if (positional.size() != 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string& path = positional[1];

  Result<std::string> src = ReadDxFile(path);
  if (!src.ok()) {
    std::fprintf(stderr, "ocdx: %s\n", src.status().ToString().c_str());
    return 1;
  }

  int exit_code = 0;
  {
    // The job span brackets parse + command, mirroring one batch job.
    obs::ScopedSpan job_span(options.engine.stats, options.engine.trace,
                             obs::kPhaseJob);
    Universe universe;
    std::optional<Result<DxScenario>> scenario;
    {
      obs::ScopedSpan parse_span(options.engine.stats, options.engine.trace,
                                 obs::kPhaseParse);
      scenario.emplace(ParseDxScenario(src.value(), &universe));
    }
    if (!scenario->ok()) {
      std::fprintf(stderr, "ocdx: %s: %s\n", path.c_str(),
                   scenario->status().ToString().c_str());
      return 1;
    }

    if (command == "print") {
      std::fputs(PrintDxScenario(scenario->value(), universe).c_str(),
                 stdout);
    } else {
      Status governed;
      Result<std::string> out = RunDxCommand(scenario->value(), command,
                                             &universe, options, &governed);
      if (!out.ok()) {
        std::fprintf(stderr, "ocdx: %s: %s\n", path.c_str(),
                     out.status().ToString().c_str());
        return 1;
      }
      std::fputs(out.value().c_str(), stdout);
      exit_code = governed.ok() ? 0 : 3;
    }
  }
  int obs_rc =
      EmitObservability(stats_flag, stats_json_flag, trace_out_flag,
                        run_stats, {obs::TraceJob{"job-0 " + path,
                                                  &trace_sink}});
  return obs_rc != 0 ? obs_rc : exit_code;
}
