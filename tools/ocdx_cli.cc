// ocdx — command-line driver for `.dx` data-exchange scenario files.
//
//   ocdx chase FILE.dx [flags]     chase every (mapping, source) pair
//   ocdx certain FILE.dx [flags]   certain answers for every query
//   ocdx classify FILE.dx          annotation / query classification
//   ocdx compose FILE.dx [flags]   composition membership + Lemma 5
//   ocdx all FILE.dx [flags]       every applicable command (golden form)
//   ocdx print FILE.dx             parse and pretty-print canonically
//
// Flags:
//   --engine=indexed|naive|generic   join-engine mode (default: indexed)
//   --mapping=NAME                   chase/certain: restrict to one mapping
//   --sigma=NAME --delta=NAME        compose: mapping selection
//   --source=NAME --target=NAME      compose: instance selection
//
// Output is canonical and diff-stable (see text/dx_driver.h); the golden
// corpus under tests/corpus pins `ocdx all` for every scenario.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "logic/engine_config.h"
#include "text/dx_driver.h"
#include "text/dx_parser.h"
#include "text/dx_printer.h"

namespace {

constexpr char kUsage[] =
    "usage: ocdx <chase|certain|classify|compose|all|print> FILE.dx\n"
    "            [--engine=indexed|naive|generic] [--mapping=NAME]\n"
    "            [--sigma=NAME] [--delta=NAME] [--source=NAME] "
    "[--target=NAME]\n";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool FlagValue(std::string_view arg, std::string_view name,
               std::string* out) {
  if (arg.substr(0, 2) != "--") return false;
  std::string_view rest = arg.substr(2);
  // "--name=value", value possibly empty (reported as invalid downstream).
  if (rest.size() < name.size() + 1 ||
      rest.substr(0, name.size()) != name || rest[name.size()] != '=') {
    return false;
  }
  *out = std::string(rest.substr(name.size() + 1));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ocdx;

  std::vector<std::string> positional;
  std::string engine = "indexed";
  DxDriverOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (FlagValue(arg, "engine", &engine) ||
        FlagValue(arg, "mapping", &options.mapping) ||
        FlagValue(arg, "sigma", &options.sigma) ||
        FlagValue(arg, "delta", &options.delta) ||
        FlagValue(arg, "source", &options.source) ||
        FlagValue(arg, "target", &options.target)) {
      continue;
    }
    if (arg.substr(0, 2) == "--") {
      std::fprintf(stderr, "ocdx: unknown flag '%s'\n%s",
                   std::string(arg).c_str(), kUsage);
      return 2;
    }
    positional.emplace_back(arg);
  }
  if (positional.size() != 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string& command = positional[0];
  const std::string& path = positional[1];

  JoinEngineMode mode;
  if (engine == "indexed") {
    mode = JoinEngineMode::kIndexed;
  } else if (engine == "naive") {
    mode = JoinEngineMode::kNaive;
  } else if (engine == "generic") {
    mode = JoinEngineMode::kGeneric;
  } else {
    std::fprintf(stderr, "ocdx: unknown engine '%s'\n%s", engine.c_str(),
                 kUsage);
    return 2;
  }
  set_join_engine_mode(mode);

  std::string src;
  if (!ReadFile(path, &src)) {
    std::fprintf(stderr, "ocdx: cannot read '%s'\n", path.c_str());
    return 1;
  }

  Universe universe;
  Result<DxScenario> scenario = ParseDxScenario(src, &universe);
  if (!scenario.ok()) {
    std::fprintf(stderr, "ocdx: %s: %s\n", path.c_str(),
                 scenario.status().ToString().c_str());
    return 1;
  }

  if (command == "print") {
    std::fputs(PrintDxScenario(scenario.value(), universe).c_str(), stdout);
    return 0;
  }

  Result<std::string> out =
      RunDxCommand(scenario.value(), command, &universe, options);
  if (!out.ok()) {
    std::fprintf(stderr, "ocdx: %s: %s\n", path.c_str(),
                 out.status().ToString().c_str());
    return 1;
  }
  std::fputs(out.value().c_str(), stdout);
  return 0;
}
