// Intra-job fan-out: a full RepA member enumeration (fixed space, no
// early stop) at shard widths 1/2/4/8. The series measures the scoped
// per-fan-out pool + scratch-Universe-clone overhead against the
// parallel speedup; on a single-core host the widths record parity
// (interleaving cannot beat the sequential walk), on a multi-core host
// the wall-clock drop at 4/8 is the headline number for ROADMAP item 1.
// The members counter must not move across widths — the shards
// partition one space, they do not change it.

#include <benchmark/benchmark.h>

#include "certain/member_enum.h"
#include "logic/engine_context.h"

namespace ocdx {
namespace {

void BM_ShardedEnumeration(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  uint64_t members = 0;
  for (auto _ : state) {
    // Rebuilt per iteration: the enumeration mints fresh constants into
    // the universe, and a fan-out clones it per shard, so a shared
    // long-lived universe would let earlier iterations pollute later
    // ones.
    Universe u;
    AnnotatedInstance t;
    for (int i = 0; i < 4; ++i) {
      t.Add("R", {u.FreshNull(), u.Const("c")}, {Ann::kClosed, Ann::kOpen});
    }
    MemberEnumOptions options;
    options.open_replication_limit = 2;
    EngineContext ctx;
    ctx.shards = shards;
    RepAMemberEnumerator en(t, {u.Const("a"), u.Const("b")}, &u, options,
                            &ctx);
    Status st = en.ForEachMember(
        [](const MemberShard&) -> RepAMemberEnumerator::ShardMemberFn {
          return [](const Instance& member) -> Result<bool> {
            benchmark::DoNotOptimize(member.TotalTuples());
            return true;
          };
        });
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    members = en.members_visited();
  }
  state.counters["members"] = static_cast<double>(members);
  state.SetLabel("intra-job fan-out: full enumeration, shard-partitioned");
}
BENCHMARK(BM_ShardedEnumeration)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
