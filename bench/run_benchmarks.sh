#!/usr/bin/env bash
# Builds the benchmarks in Release mode, runs every bench_* binary with
# --benchmark_format=json, and merges the results into BENCH_<tag>.json at
# the repo root so the perf trajectory is tracked PR over PR.
#
# bench_batch_throughput is part of the sweep: it drives the whole .dx
# corpus through the parallel batch runner (src/exec) at -j 1/2/4/8, so
# BENCH_<tag>.json records corpus jobs/second per worker count alongside
# the engine microbenchmarks. Note the scaling columns only spread on
# multi-core hosts; a single-core container records ~1x (queue overhead).
#
# Usage: bench/run_benchmarks.sh [--check BASELINE.json] [tag] [benchmark-filter]
#   --check FILE  after the run, compare against the recorded baseline and
#                 exit non-zero if any benchmark regressed by more than 20%
#                 (real_time, matched by merged benchmark name)
#   tag           suffix of the output file (default: pr1 -> BENCH_pr1.json)
#   filter        optional --benchmark_filter regex forwarded to every binary
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

CHECK_BASELINE=""
POSITIONAL=()
while [ $# -gt 0 ]; do
  case "$1" in
    --check)
      CHECK_BASELINE="$2"
      shift 2
      ;;
    *)
      POSITIONAL+=("$1")
      shift
      ;;
  esac
done
TAG="${POSITIONAL[0]:-pr1}"
FILTER="${POSITIONAL[1]:-}"
BUILD_DIR="$REPO_ROOT/build-release"
OUT="$REPO_ROOT/BENCH_${TAG}.json"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" >/dev/null

RESULTS_DIR="$BUILD_DIR/bench-results"
mkdir -p "$RESULTS_DIR"

for bin in "$BUILD_DIR"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "== $name"
  args=(--benchmark_format=json --benchmark_out="$RESULTS_DIR/$name.json"
        --benchmark_out_format=json --benchmark_repetitions=3)
  if [ -n "$FILTER" ]; then
    args+=(--benchmark_filter="$FILTER")
  fi
  "$bin" "${args[@]}" >/dev/null
done

# One instrumented corpus sweep alongside the microbenchmarks: the final
# EngineStats aggregate (plan cache traffic, shard fan-out, phase ns) is
# embedded into BENCH_<tag>.json so counter drift is tracked PR over PR
# with the timings. Exit 3 = governed corpus files (cyclic_chase trips
# its chase budget by design) — the stats are still complete.
echo "== corpus engine stats"
"$BUILD_DIR/ocdx" batch --command=all \
  --stats-json="$RESULTS_DIR/engine_stats.json" \
  "$REPO_ROOT"/tests/corpus/*.dx >/dev/null 2>&1 || true

python3 - "$OUT" "$RESULTS_DIR" <<'EOF'
import json, os, sys

out_path, results_dir = sys.argv[1], sys.argv[2]
merged = {"benchmarks": {}, "context": None}
for fname in sorted(os.listdir(results_dir)):
    if not fname.endswith(".json") or fname == "engine_stats.json":
        continue
    with open(os.path.join(results_dir, fname)) as f:
        data = json.load(f)
    if merged["context"] is None:
        merged["context"] = data.get("context")
    merged["benchmarks"][fname[: -len(".json")]] = data.get("benchmarks", [])
# Engine-counter aggregate from the corpus sweep above. Kept under its
# own key: --check reads only "benchmarks", so baselines predating this
# field stay comparable.
stats_path = os.path.join(results_dir, "engine_stats.json")
if os.path.exists(stats_path):
    with open(stats_path) as f:
        merged["engine_stats"] = json.load(f)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out_path}")
EOF

if [ -n "$CHECK_BASELINE" ]; then
  python3 - "$CHECK_BASELINE" "$OUT" <<'EOF'
import json, sys

THRESHOLD = 1.20  # fail on >20% regression

base_path, new_path = sys.argv[1], sys.argv[2]
with open(base_path) as f:
    base = json.load(f)
with open(new_path) as f:
    new = json.load(f)

def flatten(doc):
    """Benchmark name -> median real_time over repetitions (microsecond
    benchmarks are noisy on shared machines; medians keep the gate from
    tripping on one bad run)."""
    samples = {}
    for group, entries in doc.get("benchmarks", {}).items():
        for e in entries:
            if e.get("run_type", "iteration") != "iteration":
                continue
            samples.setdefault(f"{group}/{e['name']}", []).append(
                float(e["real_time"]))
    return {k: sorted(v)[len(v) // 2] for k, v in samples.items()}

base_times, new_times = flatten(base), flatten(new)
regressions, improvements = [], 0
for name, old in sorted(base_times.items()):
    if name not in new_times:
        continue  # benchmark removed or renamed; not a regression
    ratio = new_times[name] / old if old > 0 else 1.0
    if ratio > THRESHOLD:
        regressions.append((name, old, new_times[name], ratio))
    elif ratio < 1.0:
        improvements += 1

print(f"-- checked {len(base_times)} baseline benchmarks against "
      f"{base_path}: {improvements} faster, {len(regressions)} regressed "
      f">{int((THRESHOLD - 1) * 100)}%")
for name, old, cur, ratio in regressions:
    print(f"   REGRESSION {name}: {old:.4f} -> {cur:.4f} ms "
          f"({ratio:.2f}x)")
sys.exit(1 if regressions else 0)
EOF
fi
