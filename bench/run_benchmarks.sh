#!/usr/bin/env bash
# Builds the benchmarks in Release mode, runs every bench_* binary with
# --benchmark_format=json, and merges the results into BENCH_<tag>.json at
# the repo root so the perf trajectory is tracked PR over PR.
#
# Usage: bench/run_benchmarks.sh [tag] [benchmark-filter]
#   tag     suffix of the output file (default: pr1 -> BENCH_pr1.json)
#   filter  optional --benchmark_filter regex forwarded to every binary
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
TAG="${1:-pr1}"
FILTER="${2:-}"
BUILD_DIR="$REPO_ROOT/build-release"
OUT="$REPO_ROOT/BENCH_${TAG}.json"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" >/dev/null

RESULTS_DIR="$BUILD_DIR/bench-results"
mkdir -p "$RESULTS_DIR"

for bin in "$BUILD_DIR"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "== $name"
  args=(--benchmark_format=json --benchmark_out="$RESULTS_DIR/$name.json"
        --benchmark_out_format=json)
  if [ -n "$FILTER" ]; then
    args+=(--benchmark_filter="$FILTER")
  fi
  "$bin" "${args[@]}" >/dev/null
done

python3 - "$OUT" "$RESULTS_DIR" <<'EOF'
import json, os, sys

out_path, results_dir = sys.argv[1], sys.argv[2]
merged = {"benchmarks": {}, "context": None}
for fname in sorted(os.listdir(results_dir)):
    if not fname.endswith(".json"):
        continue
    with open(os.path.join(results_dir, fname)) as f:
        data = json.load(f)
    if merged["context"] is None:
        merged["context"] = data.get("context")
    merged["benchmarks"][fname[: -len(".json")]] = data.get("benchmarks", [])
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out_path}")
EOF
