// E1 (Lemma 1 / Theorem 1): the annotation lattice.
//
// Changing closed annotations to open only enlarges the semantics
// (Theorem 1.3), with the classical OWA and CWA semantics at the
// extremes (items 1-2). The series measure solution-space membership of
// the *same* target under the three readings; the member-flags exhibit
// the inclusion chain cl <= mixed <= op.

#include <benchmark/benchmark.h>

#include "mapping/rule_parser.h"
#include "logic/engine_context.h"
#include "semantics/membership.h"

namespace ocdx {
namespace {

void RunLattice(benchmark::State& state, const char* rules,
                const char* label, bool superset_target) {
  const size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Schema src, tgt;
  src.Add("E", 2);
  tgt.Add("R", 2);
  Result<Mapping> m = ParseMapping(rules, src, tgt, &u);
  Instance s;
  for (size_t i = 0; i < n; ++i) {
    s.Add("E", {u.IntConst(static_cast<int64_t>(i)), u.Const("c")});
  }
  // Target: one value per source row, plus (optionally) an extra row that
  // only open annotations tolerate.
  Instance t;
  for (size_t i = 0; i < n; ++i) {
    t.Add("R", {u.IntConst(static_cast<int64_t>(i)), u.Const("v")});
  }
  if (superset_target) {
    t.Add("R", {u.IntConst(0), u.Const("w")});
  }
  bool member = false;
  // Production configuration: a job-scoped plan cache, as the driver/CLI
  // attach per command run (the uncached path is CI's OCDX_PLAN_CACHE=off).
  const EngineContext ctx = EngineContext::CachedForMode(JoinEngineMode::kIndexed);
  for (auto _ : state) {
    Result<MembershipResult> r = InSolutionSpace(m.value(), s, t, &u, {}, ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    member = r.value().member;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["member"] = member ? 1 : 0;
  state.SetLabel(label);
}

void BM_LatticeClosed(benchmark::State& state) {
  RunLattice(state, "R(x^cl, z^cl) :- E(x, y);",
             "E1: all-closed (CWA extreme, Thm 1.1) rejects the extra row",
             true);
}
void BM_LatticeMixed(benchmark::State& state) {
  RunLattice(state, "R(x^cl, z^op) :- E(x, y);",
             "E1: mixed accepts replication on the open attribute", true);
}
void BM_LatticeOpen(benchmark::State& state) {
  RunLattice(state, "R(x^op, z^op) :- E(x, y);",
             "E1: all-open (OWA extreme, Thm 1.2)", true);
}
BENCHMARK(BM_LatticeClosed)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LatticeMixed)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LatticeOpen)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
