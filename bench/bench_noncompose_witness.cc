// E9 (Proposition 6): the witness family showing annotated FO STD
// mappings are not closed under composition. The composition of the N/C
// mappings relates S0 = {R={0}, P={1..n}} to the instances pairing all of
// {1..n} with one common unknown value; the bench sweeps n and measures
// deciding membership of the canonical member and of a near-miss.

#include <benchmark/benchmark.h>

#include "compose/compose.h"
#include "logic/engine_context.h"
#include "workloads/scenarios.h"

namespace ocdx {
namespace {

void RunProp6(benchmark::State& state, bool positive_case) {
  const size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Result<Prop6Scenario> sc =
      BuildProp6Scenario(n, Ann::kClosed, Ann::kClosed, &u);
  Instance w;
  for (size_t i = 1; i <= n; ++i) {
    w.Add("Dr", {u.IntConst(static_cast<int64_t>(i)), u.Const("c")});
  }
  if (!positive_case) {
    // Near-miss: a second value for one of the rows.
    w.Add("Dr", {u.IntConst(1), u.Const("d")});
  }
  bool member = false;
  uint64_t intermediates = 0;
  // Production configuration: a job-scoped plan cache across iterations.
  const EngineContext ctx =
      EngineContext::CachedForMode(JoinEngineMode::kIndexed);
  for (auto _ : state) {
    Result<ComposeVerdict> v = InComposition(
        sc.value().sigma, sc.value().delta, sc.value().source, w, &u, {}, ctx);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    member = v.value().member;
    intermediates = v.value().intermediates_checked;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["member"] = member ? 1 : 0;
  state.counters["intermediates"] = static_cast<double>(intermediates);
}

void BM_Prop6Member(benchmark::State& state) {
  RunProp6(state, true);
  state.SetLabel("E9: Prop 6 family, canonical member (accept)");
}
void BM_Prop6NonMember(benchmark::State& state) {
  RunProp6(state, false);
  state.SetLabel("E9: Prop 6 family, near-miss (exhaustive reject)");
}
BENCHMARK(BM_Prop6Member)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Prop6NonMember)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
