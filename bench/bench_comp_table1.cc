// E7/E8 (Theorem 4, Table 1): the composition-problem trichotomy in
// #op(Sigma_alpha), plus the NP column for monotone all-open Delta.
//
//   Table 1 of the paper:
//                      arbitrary Delta     all-open+monotone Delta
//     #op = 0          NP-complete         NP-complete
//     #op = 1          NEXPTIME-complete   NP-complete
//     #op > 1          undecidable         NP-complete
//
// Series: (row 1) the all-closed NP path on the 3-colorability reduction;
// (column 2) the Lemma 3 collapse for monotone all-open Delta under mixed
// Sigma; (row 2) the bounded general path for #op = 1.

#include <benchmark/benchmark.h>

#include "compose/compose.h"
#include "logic/engine_context.h"
#include "mapping/rule_parser.h"
#include "workloads/coloring.h"

namespace ocdx {
namespace {

void BM_Table1ClosedSigma(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Rng rng(3 * n + 1);
  Graph g = RandomThreeColorableGraph(n, 3, 4, &rng);
  Result<ColoringReduction> red = BuildColoringReduction(g, &u);
  uint64_t intermediates = 0;
  bool member = false;
  // Production configuration: a job-scoped plan cache carried across
  // iterations (the driver/CLI attach one per command run).
  const EngineContext ctx =
      EngineContext::CachedForMode(JoinEngineMode::kIndexed);
  for (auto _ : state) {
    Result<ComposeVerdict> v =
        InComposition(red.value().sigma, red.value().delta,
                      red.value().source, red.value().target, &u, {}, ctx);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    intermediates = v.value().intermediates_checked;
    member = v.value().member;
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["intermediates"] = static_cast<double>(intermediates);
  state.counters["member"] = member ? 1 : 0;
  state.SetLabel("E7 Table1 #op=0: NP (3-colorability reduction, accept)");
}
BENCHMARK(BM_Table1ClosedSigma)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_Table1ClosedSigmaReject(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ColoringReduction> red =
      BuildColoringReduction(CompleteGraph(n), &u);
  uint64_t intermediates = 0;
  // Production configuration: a job-scoped plan cache carried across
  // iterations (the driver/CLI attach one per command run).
  const EngineContext ctx =
      EngineContext::CachedForMode(JoinEngineMode::kIndexed);
  for (auto _ : state) {
    Result<ComposeVerdict> v =
        InComposition(red.value().sigma, red.value().delta,
                      red.value().source, red.value().target, &u, {}, ctx);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    intermediates = v.value().intermediates_checked;
  }
  state.counters["vertices"] = static_cast<double>(n);
  state.counters["intermediates"] = static_cast<double>(intermediates);
  state.SetLabel(
      "E7 Table1 #op=0: NP (K_n non-colorable, exhaustive reject)");
}
BENCHMARK(BM_Table1ClosedSigmaReject)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_Table1MonotoneOpenDelta(benchmark::State& state) {
  // E8 (Lemma 3 / Cor 4): mixed Sigma composed with monotone all-open
  // Delta stays NP — here with #op(Sigma) = 1.
  const size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Schema src, tau, omega;
  src.Add("E", 2);
  tau.Add("F", 2);
  omega.Add("P", 2);
  Result<Mapping> sigma =
      ParseMapping("F(x^cl, z^op) :- E(x, y);", src, tau, &u);
  Result<Mapping> delta = ParseMapping(
      "P(x^op, y^op) :- exists z. F(x, z) & F(z, y);", tau, omega, &u);
  Instance s, w;
  for (size_t i = 0; i < n; ++i) {
    s.Add("E", {u.IntConst(static_cast<int64_t>(i)),
                u.IntConst(static_cast<int64_t>(i + 1))});
  }
  w.Add("P", {u.IntConst(0), u.IntConst(0)});
  uint64_t intermediates = 0;
  // Production configuration: a job-scoped plan cache carried across
  // iterations (the driver/CLI attach one per command run).
  const EngineContext ctx =
      EngineContext::CachedForMode(JoinEngineMode::kIndexed);
  for (auto _ : state) {
    Result<ComposeVerdict> v =
        InComposition(sigma.value(), delta.value(), s, w, &u, {}, ctx);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    intermediates = v.value().intermediates_checked;
  }
  state.counters["intermediates"] = static_cast<double>(intermediates);
  state.SetLabel("E8 Table1 column 2: monotone all-open Delta is NP "
                 "for every Sigma (Lemma 3 / Cor 4)");
}
BENCHMARK(BM_Table1MonotoneOpenDelta)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_Table1OpenOneGeneral(benchmark::State& state) {
  // Row 2 with arbitrary Delta: the bounded NEXPTIME-style J-search.
  const size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Schema src, tau, omega;
  src.Add("E", 1);
  tau.Add("F", 2);
  omega.Add("P", 2);
  Result<Mapping> sigma =
      ParseMapping("F(x^cl, z^op) :- E(x);", src, tau, &u);
  Result<Mapping> delta = ParseMapping(
      "P(y^cl, y2^cl) :- F(x, y) & F(x, y2) & !(y = y2);", tau, omega, &u);
  Instance s, w;
  for (size_t i = 0; i < n; ++i) {
    s.Add("E", {u.IntConst(static_cast<int64_t>(i))});
  }
  w.Add("P", {u.Const("a"), u.Const("b")});
  w.Add("P", {u.Const("b"), u.Const("a")});
  ComposeOptions opts;
  opts.enum_options.fresh_pool = 2;
  opts.enum_options.max_universe = 16;
  uint64_t intermediates = 0;
  bool member = false;
  // Production configuration: a job-scoped plan cache carried across
  // iterations (the driver/CLI attach one per command run).
  const EngineContext ctx =
      EngineContext::CachedForMode(JoinEngineMode::kIndexed);
  for (auto _ : state) {
    Result<ComposeVerdict> v =
        InComposition(sigma.value(), delta.value(), s, w, &u, opts, ctx);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    intermediates = v.value().intermediates_checked;
    member = v.value().member;
  }
  state.counters["intermediates"] = static_cast<double>(intermediates);
  state.counters["member"] = member ? 1 : 0;
  state.SetLabel("E7 Table1 #op=1: bounded J-search (NEXPTIME, Thm 4.2)");
}
BENCHMARK(BM_Table1OpenOneGeneral)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
