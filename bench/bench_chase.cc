// E12: the chase substrate. Canonical solutions are computable in
// polynomial time for every annotation (the engine behind Theorem 1.4 and
// Corollary 2); this bench shows the scaling of CSolA construction on the
// conference scenario and on copying mappings.

#include <benchmark/benchmark.h>

#include "chase/canonical.h"
#include "logic/engine_context.h"
#include "mapping/rule_parser.h"
#include "util/rng.h"
#include "workloads/scenarios.h"

namespace ocdx {
namespace {

void RunChaseConference(benchmark::State& state, JoinEngineMode mode) {
  // Production configuration: a job-scoped plan cache carried across
  // iterations, as the driver/CLI attach per command run (the uncached
  // path is CI's OCDX_PLAN_CACHE=off job).
  const EngineContext ctx = EngineContext::CachedForMode(mode);
  const size_t papers = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ConferenceScenario> sc =
      BuildConferenceScenario(papers, papers / 2, &u);
  if (!sc.ok()) {
    state.SkipWithError(sc.status().ToString().c_str());
    return;
  }
  size_t tuples = 0;
  for (auto _ : state) {
    Result<CanonicalSolution> csol = Chase(sc.value().mapping,
                                           sc.value().source, &u, ctx);
    if (!csol.ok()) {
      state.SkipWithError(csol.status().ToString().c_str());
      return;
    }
    tuples = csol.value().annotated.TotalTuples();
    benchmark::DoNotOptimize(csol);
  }
  state.counters["target_tuples"] = static_cast<double>(tuples);
  state.counters["papers"] = static_cast<double>(papers);
}

void BM_ChaseConference(benchmark::State& state) {
  RunChaseConference(state, JoinEngineMode::kIndexed);
  state.SetLabel("E12 chase: conference scenario (PTIME, Thm 1.4)");
}
BENCHMARK(BM_ChaseConference)->Arg(10)->Arg(50)->Arg(250)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Naive-path baseline (original nested-loop scans), benched side-by-side
// at the largest arg so the indexed speedup is tracked in BENCH_*.json.
void BM_ChaseConferenceNaive(benchmark::State& state) {
  RunChaseConference(state, JoinEngineMode::kNaive);
  state.SetLabel("E12 chase baseline: naive nested-loop joins");
}
BENCHMARK(BM_ChaseConferenceNaive)->Arg(1000)->Unit(benchmark::kMillisecond);

void RunChaseCopy(benchmark::State& state, JoinEngineMode mode) {
  // Production configuration: a job-scoped plan cache carried across
  // iterations, as the driver/CLI attach per command run (the uncached
  // path is CI's OCDX_PLAN_CACHE=off job).
  const EngineContext ctx = EngineContext::CachedForMode(mode);
  const size_t edges = static_cast<size_t>(state.range(0));
  Universe u;
  Schema src;
  src.Add("E", 2);
  Result<Mapping> copy = BuildCopyMapping(src, Ann::kClosed, &u);
  Instance s;
  Rng rng(7);
  for (size_t i = 0; i < edges; ++i) {
    s.Add("E", {u.IntConst(static_cast<int64_t>(rng.Below(edges))),
                u.IntConst(static_cast<int64_t>(rng.Below(edges)))});
  }
  for (auto _ : state) {
    Result<CanonicalSolution> csol = Chase(copy.value(), s, &u, ctx);
    if (!csol.ok()) {
      state.SkipWithError(csol.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(csol);
  }
  state.counters["edges"] = static_cast<double>(edges);
}

void BM_ChaseCopy(benchmark::State& state) {
  RunChaseCopy(state, JoinEngineMode::kIndexed);
  state.SetLabel("E12 chase: copying mapping");
}
BENCHMARK(BM_ChaseCopy)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_ChaseCopyNaive(benchmark::State& state) {
  RunChaseCopy(state, JoinEngineMode::kNaive);
  state.SetLabel("E12 chase baseline: naive copying mapping");
}
BENCHMARK(BM_ChaseCopyNaive)->Arg(1000)->Unit(benchmark::kMillisecond);

// Chase with an FO body (negation): the third conference rule needs a
// subquery per paper.
void RunChaseNegatedBody(benchmark::State& state, JoinEngineMode mode) {
  // Production configuration: a job-scoped plan cache carried across
  // iterations, as the driver/CLI attach per command run (the uncached
  // path is CI's OCDX_PLAN_CACHE=off job).
  const EngineContext ctx = EngineContext::CachedForMode(mode);
  const size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Schema src, tgt;
  src.Add("Papers", 2);
  src.Add("Assignments", 2);
  tgt.Add("Reviews", 2);
  Result<Mapping> m = ParseMapping(
      "Reviews(x^cl, z^op) :- Papers(x, y) & !exists r. Assignments(x, r);",
      src, tgt, &u);
  Instance s;
  for (size_t i = 0; i < n; ++i) {
    s.Add("Papers", {u.IntConst(static_cast<int64_t>(i)), u.Const("t")});
    if (i % 2 == 0) {
      s.Add("Assignments",
            {u.IntConst(static_cast<int64_t>(i)), u.Const("r")});
    }
  }
  for (auto _ : state) {
    Result<CanonicalSolution> csol = Chase(m.value(), s, &u, ctx);
    if (!csol.ok()) {
      state.SkipWithError(csol.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(csol);
  }
}

void BM_ChaseNegatedBody(benchmark::State& state) {
  RunChaseNegatedBody(state, JoinEngineMode::kIndexed);
  state.SetLabel("E12 chase: FO body with negation (anti-join guard)");
}
BENCHMARK(BM_ChaseNegatedBody)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// The negated body is not a pure CQ, so the pre-index engine fell back to
// active-domain enumeration; bench that path side-by-side too.
void BM_ChaseNegatedBodyGeneric(benchmark::State& state) {
  RunChaseNegatedBody(state, JoinEngineMode::kGeneric);
  state.SetLabel("E12 chase baseline: negated body via generic evaluator");
}
BENCHMARK(BM_ChaseNegatedBodyGeneric)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
