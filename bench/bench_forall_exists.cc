// E6 (Proposition 5): forall*-exists* queries — the integrity-constraint
// class — stay in coNP for *every* annotation: a counterexample, if any,
// fits in polynomially many extra values. The series validate an
// inclusion constraint (certain) and a key constraint (refuted by a small
// counterexample) on the conference scenario.

#include <benchmark/benchmark.h>

#include "certain/certain.h"
#include "logic/parser.h"
#include "workloads/scenarios.h"

namespace ocdx {
namespace {

void RunConstraint(benchmark::State& state, const char* query,
                   const char* label) {
  const size_t papers = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ConferenceScenario> sc =
      BuildConferenceScenario(papers, papers / 2, &u);
  Result<CertainAnswerEngine> engine =
      CertainAnswerEngine::Create(sc.value().mapping, sc.value().source, &u);
  Result<FormulaPtr> q = ParseFormula(query, &u);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  CertainOptions opts;
  opts.enum_options.fresh_pool = 3;
  opts.enum_options.max_universe = 18;
  opts.enum_options.max_members = 30000;
  uint64_t members = 0;
  bool certain = false;
  for (auto _ : state) {
    Result<CertainVerdict> v =
        engine.value().IsCertainBoolean(q.value(), opts);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    members = v.value().members_checked;
    certain = v.value().certain;
  }
  state.counters["members"] = static_cast<double>(members);
  state.counters["certain"] = certain ? 1 : 0;
  state.SetLabel(label);
}

void BM_InclusionConstraint(benchmark::State& state) {
  // Every review is of a submitted paper: guaranteed by the closed paper#.
  RunConstraint(state,
                "forall p r. Reviews(p, r) -> exists a. Submissions(p, a)",
                "E6: inclusion dependency holds (coNP, Prop 5)");
}
BENCHMARK(BM_InclusionConstraint)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_KeyConstraint(benchmark::State& state) {
  // paper# -> review is violated for unassigned papers (open reviews).
  RunConstraint(
      state,
      "forall p r1 r2. (Reviews(p, r1) & Reviews(p, r2)) -> r1 = r2",
      "E6: key constraint refuted by a small counterexample (Prop 5)");
}
BENCHMARK(BM_KeyConstraint)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
