// E10/E11 (Lemma 4, Lemma 5, Theorem 5): Skolemized STDs.
//
//   E10: the Lemma 4 translation and the cost of SkSTD membership via
//        term-keyed nulls (the F' ~ v correspondence);
//   E11: the Lemma 5 syntactic composition — construction cost and output
//        size as the rule count grows, for both Theorem 5 classes.

#include <benchmark/benchmark.h>

#include "mapping/rule_parser.h"
#include "skolem/compose.h"
#include "skolem/skolem.h"
#include "util/str.h"

namespace ocdx {
namespace {

// A chain-shaped pair of mappings with `rules` parallel rules each.
struct ChainSetup {
  Universe u;
  Schema s0, s1, s2;
  Mapping sigma, delta;

  ChainSetup(size_t rules, Ann ann) {
    std::string sigma_rules, delta_rules;
    for (size_t i = 0; i < rules; ++i) {
      s0.Add(StrCat("A", i), 2);
      s1.Add(StrCat("B", i), 2);
      s2.Add(StrCat("C", i), 2);
      const char* a = AnnToString(ann);
      sigma_rules += StrCat("B", i, "(x^", a, ", f", i, "(x, y)^", a,
                            ") :- A", i, "(x, y);\n");
      delta_rules += StrCat("C", i, "(v^", a, ", g", i, "(w)^", a, ") :- B",
                            i, "(v, w);\n");
    }
    sigma = ParseMapping(sigma_rules, s0, s1, &u, ann, true).value();
    delta = ParseMapping(delta_rules, s1, s2, &u, ann, true).value();
  }
};

void BM_SkolemComposeConstruction(benchmark::State& state) {
  ChainSetup setup(static_cast<size_t>(state.range(0)), Ann::kClosed);
  size_t out_rules = 0;
  for (auto _ : state) {
    Result<ComposeSkolemResult> gamma =
        ComposeSkolem(setup.sigma, setup.delta, &setup.u);
    if (!gamma.ok()) {
      state.SkipWithError(gamma.status().ToString().c_str());
      return;
    }
    out_rules = gamma.value().gamma.stds().size();
    benchmark::DoNotOptimize(gamma);
  }
  state.counters["input_rules"] = static_cast<double>(2 * state.range(0));
  state.counters["output_rules"] = static_cast<double>(out_rules);
  state.SetLabel("E11: Lemma 5 syntactic composition (all-closed class)");
}
BENCHMARK(BM_SkolemComposeConstruction)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_SkolemizeAndMembership(benchmark::State& state) {
  // E10: Lemma 4 translation + term-keyed membership on growing sources.
  const size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Schema src, tgt;
  src.Add("E", 2);
  tgt.Add("R", 2);
  Result<Mapping> plain =
      ParseMapping("R(x^cl, z^op) :- E(x, y);", src, tgt, &u);
  Result<Mapping> sk = Skolemize(plain.value());
  Instance s, t;
  for (size_t i = 0; i < n; ++i) {
    s.Add("E", {u.IntConst(static_cast<int64_t>(i)), u.Const("c")});
    t.Add("R", {u.IntConst(static_cast<int64_t>(i)), u.Const("v")});
  }
  bool member = false;
  // Production configuration: a job-scoped plan cache (see bench README
  // note in bench_semantics_lattice.cc).
  const EngineContext ctx = EngineContext::CachedForMode(JoinEngineMode::kIndexed);
  for (auto _ : state) {
    Result<SkolemMembership> r = InSkolemSemantics(sk.value(), s, t, &u, {}, ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    member = r.value().member;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["member"] = member ? 1 : 0;
  state.SetLabel("E10: Lemma 4 term-keyed membership (F' ~ v)");
}
BENCHMARK(BM_SkolemizeAndMembership)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_SkolemSemanticAgreement(benchmark::State& state) {
  // E11: per-instance agreement check between the syntactic composite and
  // the semantic composition (the two-phase F' enumeration at work).
  ChainSetup setup(1, Ann::kClosed);
  Result<ComposeSkolemResult> gamma =
      ComposeSkolem(setup.sigma, setup.delta, &setup.u);
  Instance s, w;
  s.Add("A0", {setup.u.Const("a"), setup.u.Const("b")});
  w.Add("C0", {setup.u.Const("x"), setup.u.Const("y")});
  uint64_t interpretations = 0;
  const EngineContext ctx = EngineContext::CachedForMode(JoinEngineMode::kIndexed);
  for (auto _ : state) {
    Result<SkolemMembership> lhs =
        InSkolemSemantics(gamma.value().gamma, s, w, &setup.u, {}, ctx);
    Result<SkolemMembership> rhs =
        InSkolemComposition(setup.sigma, setup.delta, s, w, &setup.u, {}, ctx);
    if (!lhs.ok() || !rhs.ok() ||
        lhs.value().member != rhs.value().member) {
      state.SkipWithError("syntactic/semantic composition disagree");
      return;
    }
    interpretations = lhs.value().interpretations_checked +
                      rhs.value().interpretations_checked;
  }
  state.counters["interpretations"] = static_cast<double>(interpretations);
  state.SetLabel("E11: syntactic vs semantic composition agreement");
}
BENCHMARK(BM_SkolemSemanticAgreement)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
