// Fan-out setup economics: what does a shard (or a preload request)
// pay before it can do any work?
//
//   BM_CloneSetup_*    the pre-PR 10 cost — a deep Universe::Clone per
//                      shard (constant table + null registry +
//                      justification arena, copied)
//   BM_OverlaySetup_*  the frozen-base cost — Universe::NewOverlay per
//                      shard (a view; nothing copied)
//   BM_WarmRequest_*   one warm `ocdxd --preload` request against a
//                      frozen snapshot bundle of the largest corpus
//                      scenario, shared plan table attached — the
//                      steady-state serving cost this PR optimizes
//
// The acceptance headline is CloneSetup / OverlaySetup real_time on the
// BulkImport pair (tests/corpus/bulk_import.dx, the largest corpus
// scenario, ~24k facts): per-shard setup must come in at least 5x
// cheaper with overlays (in BENCH_pr10.json the ratio is orders of
// magnitude — an overlay never touches the 24k-constant table).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/value.h"
#include "plan/plan_cache.h"
#include "plan/shared_plan_table.h"
#include "snap/snapshot.h"
#include "text/dx_parser.h"

namespace ocdx {
namespace {

namespace fs = std::filesystem;

std::string LargestCorpusFile() {
  std::string best;
  uintmax_t best_size = 0;
  for (const auto& entry : fs::directory_iterator(OCDX_CORPUS_DIR)) {
    if (entry.path().extension() != ".dx") continue;
    uintmax_t size = fs::file_size(entry.path());
    if (size > best_size) {
      best_size = size;
      best = entry.path();
    }
  }
  return best;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Parses the largest corpus scenario into `universe` (the caller-side
// state a fan-out starts from). Returns false on failure.
bool ParseLargest(Universe* universe) {
  const std::string file = LargestCorpusFile();
  if (file.empty()) return false;
  Result<DxScenario> scenario = ParseDxScenario(ReadFile(file), universe);
  return scenario.ok();
}

// Pre-PR 10 per-shard setup: one deep clone of the caller's universe.
void BM_CloneSetup_BulkImport(benchmark::State& state) {
  Universe base;
  if (!ParseLargest(&base)) {
    state.SkipWithError("cannot parse the largest corpus scenario");
    return;
  }
  uint64_t copied = 0;
  for (auto _ : state) {
    copied = 0;
    std::unique_ptr<Universe> shard = base.Clone(&copied);
    benchmark::DoNotOptimize(shard);
  }
  state.counters["clone_bytes"] = static_cast<double>(copied);
  state.SetLabel("per-shard setup, deep Universe::Clone (pre-PR 10)");
}
BENCHMARK(BM_CloneSetup_BulkImport)->Unit(benchmark::kMicrosecond);

// Frozen-base per-shard setup: one copy-on-write overlay. The >=5x
// acceptance ratio is CloneSetup/OverlaySetup real_time.
void BM_OverlaySetup_BulkImport(benchmark::State& state) {
  Universe base;
  if (!ParseLargest(&base)) {
    state.SkipWithError("cannot parse the largest corpus scenario");
    return;
  }
  base.Freeze();
  for (auto _ : state) {
    std::unique_ptr<Universe> shard = base.NewOverlay();
    benchmark::DoNotOptimize(shard);
  }
  state.counters["bytes_avoided"] = static_cast<double>(base.ApproxCloneBytes());
  state.SetLabel("per-shard setup, copy-on-write overlay (PR 10)");
}
BENCHMARK(BM_OverlaySetup_BulkImport)->Unit(benchmark::kMicrosecond);

// An 8-wide fan-out's whole setup bill, both ways — the number a user
// sees between `--shards=8` arriving and the workers starting.
void BM_CloneSetup_8Shards(benchmark::State& state) {
  Universe base;
  if (!ParseLargest(&base)) {
    state.SkipWithError("cannot parse the largest corpus scenario");
    return;
  }
  for (auto _ : state) {
    std::vector<std::unique_ptr<Universe>> shards;
    for (int s = 0; s < 8; ++s) shards.push_back(base.Clone());
    benchmark::DoNotOptimize(shards);
  }
  state.SetLabel("8-shard fan-out setup via clones");
}
BENCHMARK(BM_CloneSetup_8Shards)->Unit(benchmark::kMicrosecond);

void BM_OverlaySetup_8Shards(benchmark::State& state) {
  Universe base;
  if (!ParseLargest(&base)) {
    state.SkipWithError("cannot parse the largest corpus scenario");
    return;
  }
  base.Freeze();
  for (auto _ : state) {
    std::vector<std::unique_ptr<Universe>> shards;
    for (int s = 0; s < 8; ++s) shards.push_back(base.NewOverlay());
    benchmark::DoNotOptimize(shards);
  }
  state.SetLabel("8-shard fan-out setup via overlays");
}
BENCHMARK(BM_OverlaySetup_8Shards)->Unit(benchmark::kMicrosecond);

// One warm request against a preloaded, frozen snapshot bundle of the
// largest corpus scenario, with the bundle's shared plan table attached
// — exactly what `ocdxd --preload` does per request in steady state
// (overlay mint + evaluate; no parse, no chase, no clone, plans
// compiled once per bundle lifetime).
void BM_WarmRequest_BulkImport(benchmark::State& state) {
  const std::string file = LargestCorpusFile();
  if (file.empty()) {
    state.SkipWithError("no corpus files under OCDX_CORPUS_DIR");
    return;
  }
  Result<snap::SnapshotBundle> bundle =
      snap::BuildSnapshotBundle(file, ReadFile(file));
  if (!bundle.ok()) {
    state.SkipWithError(bundle.status().ToString().c_str());
    return;
  }
  plan::SharedPlanTable plans;
  DxDriverOptions options;
  if (plan::PlanCache::EnabledByEnv()) options.engine.shared_plans = &plans;
  EngineStats stats;
  options.engine.stats = &stats;
  for (auto _ : state) {
    Result<std::string> out =
        snap::RunSnapshotCommand(bundle.value(), "all", options);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  state.counters["overlay_mints"] = static_cast<double>(stats.overlay_mints);
  state.counters["clone_bytes_avoided"] =
      static_cast<double>(stats.clone_bytes_avoided);
  state.counters["shared_plan_hits"] =
      static_cast<double>(stats.shared_plan_hits);
  state.SetLabel("warm preload request: overlay + evaluate, shared plans");
}
BENCHMARK(BM_WarmRequest_BulkImport)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
