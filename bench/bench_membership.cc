// E2 (Theorem 2 + Corollary 1): solution-space recognition.
//
// PTIME for all-open annotations vs NP-complete as soon as one closed
// position exists — witnessed by the tripartite-matching reduction. The
// series show: (a) the PTIME all-open path scaling smoothly, (b) the NP
// path on yes-instances (a witness valuation is found), and (c) the NP
// path on no-instances (the whole search space must be refuted — the
// exponential wall).

#include <benchmark/benchmark.h>

#include "logic/engine_context.h"
#include "semantics/membership.h"
#include "util/rng.h"
#include "workloads/tripartite.h"

namespace ocdx {
namespace {

void RunMembership(benchmark::State& state, bool all_open, bool want_match,
                   JoinEngineMode mode = JoinEngineMode::kIndexed) {
  // Production configuration: a job-scoped plan cache carried across
  // iterations, as the driver/CLI attach per command run (the uncached
  // path is CI's OCDX_PLAN_CACHE=off job).
  const EngineContext ctx = EngineContext::CachedForMode(mode);
  const size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Rng rng(2024 + n);
  TripartiteInstance inst;
  if (want_match) {
    inst = TripartiteWithMatching(n, n, &rng);
  } else {
    // Triples that all reuse b0: no perfect matching for n >= 2.
    inst.n = n;
    for (uint32_t i = 0; i < n; ++i) {
      inst.triples.push_back({0, i, i});
      inst.triples.push_back({0, i, (i + 1) % static_cast<uint32_t>(n)});
    }
  }
  Result<TripartiteReduction> red = BuildTripartiteReduction(inst, &u);
  if (!red.ok()) {
    state.SkipWithError(red.status().ToString().c_str());
    return;
  }
  Mapping mapping = all_open
                        ? red.value().mapping.WithUniformAnnotation(Ann::kOpen)
                        : red.value().mapping;
  bool member = false;
  for (auto _ : state) {
    Result<MembershipResult> r = InSolutionSpace(
        mapping, red.value().source, red.value().target, &u, {}, ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    member = r.value().member;
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["member"] = member ? 1 : 0;
}

void BM_MembershipAllOpenPtime(benchmark::State& state) {
  RunMembership(state, /*all_open=*/true, /*want_match=*/true);
  state.SetLabel("E2: all-open PTIME path (Thm 2.1)");
}
BENCHMARK(BM_MembershipAllOpenPtime)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_MembershipNpYes(benchmark::State& state) {
  RunMembership(state, /*all_open=*/false, /*want_match=*/true);
  state.SetLabel("E2: #cl=1 NP path, matching exists (accept)");
}
BENCHMARK(BM_MembershipNpYes)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_MembershipNpNo(benchmark::State& state) {
  RunMembership(state, /*all_open=*/false, /*want_match=*/false);
  state.SetLabel("E2: #cl=1 NP path, no matching (exhaustive reject)");
}
BENCHMARK(BM_MembershipNpNo)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

// Naive-path baselines (original scans, no index probes, no boolean-CQ
// fast path), benched side-by-side at the largest args so BENCH_*.json
// records the indexed speedup.
void BM_MembershipAllOpenPtimeNaive(benchmark::State& state) {
  RunMembership(state, /*all_open=*/true, /*want_match=*/true,
                JoinEngineMode::kNaive);
  state.SetLabel("E2 baseline: all-open PTIME path, naive engine");
}
BENCHMARK(BM_MembershipAllOpenPtimeNaive)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_MembershipNpYesNaive(benchmark::State& state) {
  RunMembership(state, /*all_open=*/false, /*want_match=*/true,
                JoinEngineMode::kNaive);
  state.SetLabel("E2 baseline: NP accept path, naive engine");
}
BENCHMARK(BM_MembershipNpYesNaive)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_MembershipNpNoNaive(benchmark::State& state) {
  RunMembership(state, /*all_open=*/false, /*want_match=*/false,
                JoinEngineMode::kNaive);
  state.SetLabel("E2 baseline: NP exhaustive-reject path, naive engine");
}
BENCHMARK(BM_MembershipNpNoNaive)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
