// E5 (Proposition 4): monotone queries — certain answers collapse to the
// CWA for every annotation; complexity coNP (and coNP-hard already for a
// CQ with two inequalities, after [Madry05]). The series sweep the
// Madry-style workload size and the annotation, showing (a) the identical
// answers and (b) the coNP valuation-enumeration growth.

#include <benchmark/benchmark.h>

#include "certain/certain.h"
#include "workloads/scenarios.h"

namespace ocdx {
namespace {

void RunMadry(benchmark::State& state, Ann uniform, bool keep_original) {
  const size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Rng rng(17);
  Result<MadryScenario> sc = BuildMadryScenario(n, 2, 3, &rng, &u);
  Mapping mapping = keep_original
                        ? sc.value().mapping
                        : sc.value().mapping.WithUniformAnnotation(uniform);
  Result<CertainAnswerEngine> engine =
      CertainAnswerEngine::Create(mapping, sc.value().source, &u);
  uint64_t members = 0;
  bool certain = false;
  for (auto _ : state) {
    Result<CertainVerdict> v =
        engine.value().IsCertainBoolean(sc.value().query);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    members = v.value().members_checked;
    certain = v.value().certain;
  }
  state.counters["members"] = static_cast<double>(members);
  state.counters["certain"] = certain ? 1 : 0;
  state.counters["n"] = static_cast<double>(n);
}

void BM_MadryClosed(benchmark::State& state) {
  RunMadry(state, Ann::kClosed, true);
  state.SetLabel("E5: CQ+inequalities, closed annotation (coNP, Prop 4)");
}
void BM_MadryOpen(benchmark::State& state) {
  RunMadry(state, Ann::kOpen, false);
  state.SetLabel("E5: CQ+inequalities, open annotation (same answers)");
}
BENCHMARK(BM_MadryClosed)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MadryOpen)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
