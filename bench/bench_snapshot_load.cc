// Snapshot warm-start economics: what does `ocdxd --preload` actually
// buy over a cold parse-and-chase?
//
//   BM_ColdBuild_*   parse + chase every applicable pair
//                    (snap::BuildSnapshotBundle — the work a snapshot
//                    write does once, and a cold server does per file)
//   BM_WarmLoad_*    reconstitute the same state from snapshot bytes
//                    (snap::ParseSnapshot — validation + bulk loads)
//
// The headline is the LargestCorpus pair: the biggest scenario in
// tests/corpus (bulk_import.dx, ~24k bulk facts), where a cold run pays
// the full fact parse and the warm load streams the same rows back from
// the snapshot's binary instances section. The warm load must come in
// at least an order of magnitude under the cold build (the acceptance
// bar for this PR — the ratio is visible in BENCH_pr8.json as
// cold_build/warm_load real_time). The Synthetic pair covers the
// chase-heavy shape (triggers dominate facts), and the Corpus pair
// sweeps every corpus file to track the load-overhead floor on small,
// parse-bound scenarios.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "snap/snapshot.h"

namespace ocdx {
namespace {

namespace fs = std::filesystem;

std::span<const uint8_t> AsBytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// A chase-heavy scenario: a dense 14-node digraph copied through three
// STDs whose 2-atom bodies join E with itself, so trigger count scales
// with paths (~14^3 per join STD), each firing minting fresh nulls —
// while the text stays a few KB. This is the shape snapshots exist for:
// chase time dominates parse time by orders of magnitude.
std::string SyntheticHeavyScenario() {
  std::ostringstream dx;
  dx << "scenario 'snapshot_load_bench';\n"
     << "schema src { E(a, b); }\n"
     << "schema tgt { F(a, b, c); G(a, b, c); H(a, b); }\n"
     << "mapping M from src to tgt [default op] {\n"
     << "  F(x^op, z^op, u^op) :- E(x, y) & E(y, z);\n"
     << "  G(y^op, w^op, v^op) :- E(x, y) & E(x, z);\n"
     << "  H(x^op, u^op) :- E(x, y);\n"
     << "}\n"
     << "instance S over src {\n";
  constexpr int kNodes = 14;
  for (int i = 0; i < kNodes; ++i) {
    for (int j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      dx << "  E('n" << i << "', 'n" << j << "');\n";
    }
  }
  dx << "}\n";
  return dx.str();
}

std::string CorpusConcatenation(std::vector<std::string>* files) {
  for (const auto& entry : fs::directory_iterator(OCDX_CORPUS_DIR)) {
    if (entry.path().extension() == ".dx") files->push_back(entry.path());
  }
  std::sort(files->begin(), files->end());
  return files->empty() ? "" : files->front();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void RunColdBuild(benchmark::State& state, const std::string& name,
                  const std::string& src) {
  size_t pairs = 0;
  for (auto _ : state) {
    Result<snap::SnapshotBundle> bundle =
        snap::BuildSnapshotBundle(name, src);
    if (!bundle.ok()) {
      state.SkipWithError(bundle.status().ToString().c_str());
      return;
    }
    pairs = bundle.value().prechased.size();
    benchmark::DoNotOptimize(bundle);
  }
  state.counters["prechased_pairs"] = static_cast<double>(pairs);
  state.counters["dx_bytes"] = static_cast<double>(src.size());
}

void RunWarmLoad(benchmark::State& state, const std::string& name,
                 const std::string& src) {
  Result<snap::SnapshotBundle> bundle = snap::BuildSnapshotBundle(name, src);
  if (!bundle.ok()) {
    state.SkipWithError(bundle.status().ToString().c_str());
    return;
  }
  Result<std::string> bytes = snap::SerializeSnapshot(bundle.value());
  if (!bytes.ok()) {
    state.SkipWithError(bytes.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<snap::SnapshotBundle> loaded =
        snap::ParseSnapshot(AsBytes(bytes.value()));
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(loaded);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.value().size());
}

void BM_ColdBuild_Synthetic(benchmark::State& state) {
  RunColdBuild(state, "synthetic.dx", SyntheticHeavyScenario());
  state.SetLabel("cold: parse + chase, join-dense synthetic scenario");
}
BENCHMARK(BM_ColdBuild_Synthetic)->Unit(benchmark::kMillisecond);

void BM_WarmLoad_Synthetic(benchmark::State& state) {
  RunWarmLoad(state, "synthetic.dx", SyntheticHeavyScenario());
  state.SetLabel("warm: snapshot load of the same chased state");
}
BENCHMARK(BM_WarmLoad_Synthetic)->Unit(benchmark::kMillisecond);

// The acceptance headline: the largest corpus scenario by byte size
// (tests/corpus/bulk_import.dx — ~24k bulk facts no rule touches plus a
// small chase). Cold is parse-bound; warm reads the facts back from the
// binary instances section with an elided structure-only parse, and the
// cold/warm real_time ratio here is the >=10x warm-start bar.
std::string LargestCorpusFile() {
  std::string best;
  uintmax_t best_size = 0;
  for (const auto& entry : fs::directory_iterator(OCDX_CORPUS_DIR)) {
    if (entry.path().extension() != ".dx") continue;
    uintmax_t size = fs::file_size(entry.path());
    if (size > best_size) {
      best_size = size;
      best = entry.path();
    }
  }
  return best;
}

void BM_ColdBuild_LargestCorpus(benchmark::State& state) {
  const std::string file = LargestCorpusFile();
  if (file.empty()) {
    state.SkipWithError("no corpus files under OCDX_CORPUS_DIR");
    return;
  }
  RunColdBuild(state, file, ReadFile(file));
  state.SetLabel("cold: parse + chase, largest corpus scenario");
}
BENCHMARK(BM_ColdBuild_LargestCorpus)->Unit(benchmark::kMillisecond);

void BM_WarmLoad_LargestCorpus(benchmark::State& state) {
  const std::string file = LargestCorpusFile();
  if (file.empty()) {
    state.SkipWithError("no corpus files under OCDX_CORPUS_DIR");
    return;
  }
  RunWarmLoad(state, file, ReadFile(file));
  state.SetLabel("warm: snapshot load of the same imported state");
}
BENCHMARK(BM_WarmLoad_LargestCorpus)->Unit(benchmark::kMillisecond);

// The full corpus, one bundle per file per iteration: real scenarios,
// parse-bound (small instances), so this tracks load overhead floor.
void BM_ColdBuild_Corpus(benchmark::State& state) {
  std::vector<std::string> files;
  CorpusConcatenation(&files);
  if (files.empty()) {
    state.SkipWithError("no corpus files under OCDX_CORPUS_DIR");
    return;
  }
  std::vector<std::string> sources;
  for (const std::string& f : files) sources.push_back(ReadFile(f));
  for (auto _ : state) {
    for (size_t i = 0; i < files.size(); ++i) {
      Result<snap::SnapshotBundle> bundle =
          snap::BuildSnapshotBundle(files[i], sources[i]);
      if (!bundle.ok()) {
        state.SkipWithError(bundle.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(bundle);
    }
  }
  state.counters["files"] = static_cast<double>(files.size());
  state.SetLabel("cold: parse + chase, whole corpus");
}
BENCHMARK(BM_ColdBuild_Corpus)->Unit(benchmark::kMillisecond);

void BM_WarmLoad_Corpus(benchmark::State& state) {
  std::vector<std::string> files;
  CorpusConcatenation(&files);
  if (files.empty()) {
    state.SkipWithError("no corpus files under OCDX_CORPUS_DIR");
    return;
  }
  std::vector<std::string> snaps;
  for (const std::string& f : files) {
    Result<snap::SnapshotBundle> bundle =
        snap::BuildSnapshotBundle(f, ReadFile(f));
    if (!bundle.ok()) {
      state.SkipWithError(bundle.status().ToString().c_str());
      return;
    }
    Result<std::string> bytes = snap::SerializeSnapshot(bundle.value());
    if (!bytes.ok()) {
      state.SkipWithError(bytes.status().ToString().c_str());
      return;
    }
    snaps.push_back(bytes.value());
  }
  for (auto _ : state) {
    for (const std::string& bytes : snaps) {
      Result<snap::SnapshotBundle> loaded = snap::ParseSnapshot(AsBytes(bytes));
      if (!loaded.ok()) {
        state.SkipWithError(loaded.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(loaded);
    }
  }
  state.counters["files"] = static_cast<double>(snaps.size());
  state.SetLabel("warm: snapshot load, whole corpus");
}
BENCHMARK(BM_WarmLoad_Corpus)->Unit(benchmark::kMillisecond);

// End-to-end warm command: load once, serve `all` repeatedly — the
// ocdxd --preload steady state (clone + evaluate, no parse, no chase).
void BM_WarmServe_Synthetic(benchmark::State& state) {
  Result<snap::SnapshotBundle> bundle =
      snap::BuildSnapshotBundle("synthetic.dx", SyntheticHeavyScenario());
  if (!bundle.ok()) {
    state.SkipWithError(bundle.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<std::string> out =
        snap::RunSnapshotCommand(bundle.value(), "chase");
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("warm serve: chase command from preloaded bundle");
}
BENCHMARK(BM_WarmServe_Synthetic)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
