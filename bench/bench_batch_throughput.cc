// Batch-runner throughput: the whole `.dx` corpus driven end to end
// (`ocdx batch --command=all`) at increasing worker counts, plus the
// arena-allocated trigger-storage chase this PR lands.
//
// The scaling story is jobs/second at -j1 vs -j4/-j8: on a multi-core
// host the work-queue fans the corpus's independent jobs across cores
// (the jobs share no mutable state, so the speedup is bounded only by
// job-size imbalance); on a single-core host the numbers document the
// queue's overhead instead (expect ~1x — the container this repo is
// developed in has one core, see BENCH_pr4.json context).
//
// Repeating the corpus (`repeat` counter) amplifies the workload so the
// pool's scheduling cost stays amortized and per-repetition noise drops.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "exec/batch_runner.h"

namespace ocdx {
namespace {

// The enumeration-heavy scenarios added in PR 5. They do one to two
// orders of magnitude more evaluation work per job than the PR 3
// corpus, so BM_BatchCorpus pins the original file set (keeping its
// jobs/second comparable across BENCH_*.json baselines) and
// BM_BatchEnumCorpus tracks the heavy set separately.
bool IsEnumHeavy(const std::string& path) {
  namespace fs = std::filesystem;
  const std::string stem = fs::path(path).stem().string();
  return stem == "valuation_enum" || stem == "member_search" ||
         stem == "membership_sweep";
}

std::vector<std::string> CorpusFiles(size_t repeat, bool enum_heavy) {
  namespace fs = std::filesystem;
  std::vector<std::string> base;
  for (const auto& entry : fs::directory_iterator(OCDX_CORPUS_DIR)) {
    if (entry.path().extension() != ".dx") continue;
    if (IsEnumHeavy(entry.path()) != enum_heavy) continue;
    base.push_back(entry.path());
  }
  std::sort(base.begin(), base.end());
  std::vector<std::string> out;
  out.reserve(base.size() * repeat);
  for (size_t r = 0; r < repeat; ++r) {
    out.insert(out.end(), base.begin(), base.end());
  }
  return out;
}

void RunBatchCorpus(benchmark::State& state, JoinEngineMode mode,
                    bool enum_heavy = false) {
  const size_t workers = static_cast<size_t>(state.range(0));
  const size_t repeat = 4;
  std::vector<std::string> files = CorpusFiles(repeat, enum_heavy);
  if (files.empty()) {
    state.SkipWithError("no corpus files under OCDX_CORPUS_DIR");
    return;
  }
  BatchOptions options;
  options.workers = workers;
  options.engine = EngineContext::ForMode(mode);

  size_t jobs = 0;
  for (auto _ : state) {
    Result<BatchReport> report = RunDxBatch(files, options);
    if (!report.ok() || !report.value().ok()) {
      state.SkipWithError("batch run failed");
      return;
    }
    jobs = report.value().total_jobs;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs) * state.iterations());
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["files"] = static_cast<double>(files.size());
}

void BM_BatchCorpus(benchmark::State& state) {
  RunBatchCorpus(state, JoinEngineMode::kIndexed);
  state.SetLabel("batch: full corpus, command=all, indexed engine");
}
BENCHMARK(BM_BatchCorpus)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BatchCorpusNaive(benchmark::State& state) {
  RunBatchCorpus(state, JoinEngineMode::kNaive);
  state.SetLabel("batch: full corpus, command=all, naive engine");
}
BENCHMARK(BM_BatchCorpusNaive)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The enumeration-heavy PR 5 scenarios (valuation enumeration, bounded
// member search, membership fan-out): the workload the compile-once
// plan cache exists for.
void BM_BatchEnumCorpus(benchmark::State& state) {
  RunBatchCorpus(state, JoinEngineMode::kIndexed, /*enum_heavy=*/true);
  state.SetLabel("batch: enumeration-heavy corpus, command=all, indexed");
}
BENCHMARK(BM_BatchEnumCorpus)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// One file, split into per-mapping slices: the within-scenario fan-out.
void BM_BatchSingleFileSplit(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  std::string file = std::string(OCDX_CORPUS_DIR) + "/membership.dx";
  BatchOptions options;
  options.workers = workers;
  for (auto _ : state) {
    Result<BatchReport> report = RunDxBatch({file}, options);
    if (!report.ok() || !report.value().ok()) {
      state.SkipWithError("batch run failed");
      return;
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["workers"] = static_cast<double>(workers);
  state.SetLabel("batch: one scenario fanned per-mapping");
}
BENCHMARK(BM_BatchSingleFileSplit)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
