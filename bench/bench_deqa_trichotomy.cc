// E4 (Theorem 3): the DEQA trichotomy for FO queries, classified by
// #op(Sigma_alpha):
//
//   #op = 0  coNP          — valuation enumeration over CSol's nulls:
//                            cost tracks Bell(#nulls) (superexponential in
//                            the source, fine for fixed mappings);
//   #op = 1  coNEXPTIME    — member enumeration with the Lemma 2 bound:
//                            cost explodes with the extra-tuple universe;
//   #op = 2  undecidable   — bounded search only; the verdict reports
//                            exhaustive=false on certain=true.
//
// The counters report how many RepA members each decision visited — the
// searched-space size is the paper's complexity claim made visible.

#include <benchmark/benchmark.h>

#include "certain/certain.h"
#include "logic/parser.h"
#include "mapping/rule_parser.h"

namespace ocdx {
namespace {

struct Setup {
  Universe u;
  Schema src, tgt;
  Instance s;

  explicit Setup(size_t tuples) {
    src.Add("E", 2);
    tgt.Add("R", 2);
    for (size_t i = 0; i < tuples; ++i) {
      s.Add("E", {u.IntConst(static_cast<int64_t>(i)),
                  u.IntConst(static_cast<int64_t>(i + 1))});
    }
  }
};

// The same genuinely-FO query in all three cells.
const char kQuery[] = "exists x z. R(x, z) & forall w. R(x, w) -> w = z";

void BM_DeqaClosed(benchmark::State& state) {
  Setup setup(static_cast<size_t>(state.range(0)));
  Result<Mapping> m = ParseMapping("R(x^cl, z^cl) :- E(x, y);", setup.src,
                                   setup.tgt, &setup.u);
  Result<CertainAnswerEngine> engine =
      CertainAnswerEngine::Create(m.value(), setup.s, &setup.u);
  Result<FormulaPtr> q = ParseFormula(kQuery, &setup.u);
  uint64_t members = 0;
  bool certain = false;
  for (auto _ : state) {
    Result<CertainVerdict> v = engine.value().IsCertainBoolean(q.value());
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    members = v.value().members_checked;
    certain = v.value().certain;
  }
  state.counters["members"] = static_cast<double>(members);
  state.counters["certain"] = certain ? 1 : 0;
  state.SetLabel("E4 #op=0: coNP valuation enumeration (Thm 3.1)");
}
BENCHMARK(BM_DeqaClosed)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_DeqaOpenOne(benchmark::State& state) {
  Setup setup(static_cast<size_t>(state.range(0)));
  Result<Mapping> m = ParseMapping("R(x^cl, z^op) :- E(x, y);", setup.src,
                                   setup.tgt, &setup.u);
  Result<CertainAnswerEngine> engine =
      CertainAnswerEngine::Create(m.value(), setup.s, &setup.u);
  Result<FormulaPtr> q = ParseFormula(kQuery, &setup.u);
  CertainOptions opts;
  opts.enum_options.fresh_pool = 4;
  opts.enum_options.max_universe = 30;
  uint64_t members = 0;
  bool certain = false;
  for (auto _ : state) {
    Result<CertainVerdict> v =
        engine.value().IsCertainBoolean(q.value(), opts);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    members = v.value().members_checked;
    certain = v.value().certain;
  }
  state.counters["members"] = static_cast<double>(members);
  state.counters["certain"] = certain ? 1 : 0;
  state.SetLabel("E4 #op=1: Lemma-2 bounded search (coNEXPTIME, Thm 3.2)");
}
BENCHMARK(BM_DeqaOpenOne)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_DeqaOpenTwo(benchmark::State& state) {
  Setup setup(static_cast<size_t>(state.range(0)));
  Result<Mapping> m = ParseMapping("R(z1^op, z2^op) :- E(x, y);", setup.src,
                                   setup.tgt, &setup.u);
  Result<CertainAnswerEngine> engine =
      CertainAnswerEngine::Create(m.value(), setup.s, &setup.u);
  Result<FormulaPtr> q =
      ParseFormula("forall x y. R(x, y) -> R(y, x)", &setup.u);
  CertainOptions opts;
  opts.enum_options.fresh_pool = 2;
  opts.enum_options.max_universe = 12;
  opts.enum_options.max_members = 20000;
  uint64_t members = 0;
  bool exhaustive = true;
  for (auto _ : state) {
    Result<CertainVerdict> v =
        engine.value().IsCertainBoolean(q.value(), opts);
    if (!v.ok()) {
      state.SkipWithError(v.status().ToString().c_str());
      return;
    }
    members = v.value().members_checked;
    exhaustive = v.value().exhaustive;
  }
  state.counters["members"] = static_cast<double>(members);
  state.counters["exhaustive"] = exhaustive ? 1 : 0;
  state.SetLabel("E4 #op=2: bounded search only (undecidable, Thm 3.3)");
}
BENCHMARK(BM_DeqaOpenTwo)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
