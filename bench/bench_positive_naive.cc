// E3 (Proposition 3 / Corollary 3): positive queries are answered by
// PTIME naive evaluation on CSol(S), *independently of the annotation*.
// The three series (all-closed / mixed / all-open) should track each
// other: the annotation does not influence either the answers or the
// cost.

#include <benchmark/benchmark.h>

#include "certain/certain.h"
#include "logic/parser.h"
#include "workloads/scenarios.h"

namespace ocdx {
namespace {

void RunPositive(benchmark::State& state, Ann uniform, bool keep_mixed) {
  const size_t papers = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ConferenceScenario> sc =
      BuildConferenceScenario(papers, papers / 2, &u);
  Mapping mapping = keep_mixed
                        ? sc.value().mapping
                        : sc.value().mapping.WithUniformAnnotation(uniform);
  Result<CertainAnswerEngine> engine =
      CertainAnswerEngine::Create(mapping, sc.value().source, &u);
  Result<FormulaPtr> q = ParseFormula(
      "exists a. Submissions(p, a) & exists r. Reviews(p, r)", &u);
  size_t answers = 0;
  for (auto _ : state) {
    Result<Relation> r = engine.value().CertainAnswers(q.value(), {"p"});
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    answers = r.value().size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["papers"] = static_cast<double>(papers);
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_PositiveAllClosed(benchmark::State& state) {
  RunPositive(state, Ann::kClosed, false);
  state.SetLabel("E3: positive query, all-closed (naive eval, Prop 3)");
}
void BM_PositiveMixed(benchmark::State& state) {
  RunPositive(state, Ann::kClosed, true);
  state.SetLabel("E3: positive query, mixed annotation (same engine)");
}
void BM_PositiveAllOpen(benchmark::State& state) {
  RunPositive(state, Ann::kOpen, false);
  state.SetLabel("E3: positive query, all-open (same engine)");
}
BENCHMARK(BM_PositiveAllClosed)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PositiveMixed)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PositiveAllOpen)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ocdx

BENCHMARK_MAIN();
